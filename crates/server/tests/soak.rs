//! Concurrent-mutation soak: N clients hammer one daemon with
//! insert/delete/compact traffic and the final statistics must be
//! byte-identical to the same batches applied on a serial schedule.
//!
//! This holds because the histogram cell statistics are fixed-point
//! accumulators (lint rule r2 bans floats from merge paths), so batch
//! application commutes — any interleaving of disjoint batches folds to
//! the same bytes. Each client works a disjoint coordinate band and
//! deletes only rectangles it inserted itself, so every delete resolves
//! regardless of interleaving; the dataset is compared as a multiset
//! (thread arrival order is scheduler-dependent, the *contents* are
//! not).

use sj_core::sync::{LockRank, OrderedRwLock};
use sj_geo::{Extent, Rect};
use sj_query::{Catalog, DegradationPolicy};
use sj_server::{CatalogService, Client, Server};
use std::sync::Arc;

const TABLE: &str = "t";
const BASE_N: usize = 50;
const THREADS: usize = 4;
const ROUNDS: usize = 6;
const BATCH: usize = 4;

fn base_rects() -> Vec<Rect> {
    (0..BASE_N)
        .map(|i| {
            let x = (i % 10) as f64 * 0.04 + 0.002;
            let y = (i / 10) as f64 * 0.04 + 0.002;
            Rect::new(x, y, x + 0.03, y + 0.03)
        })
        .collect()
}

/// Thread `t`'s insert batch for round `r`: confined to the thread's own
/// y-band so no two threads ever produce an identical rectangle.
fn thread_batch(t: usize, r: usize) -> Vec<Rect> {
    (0..BATCH)
        .map(|j| {
            let x = (r * BATCH + j) as f64 * 0.03 + 0.001;
            let y = 0.5 + t as f64 * 0.12;
            Rect::new(x, y, x + 0.02, y + 0.02 + j as f64 * 1e-3)
        })
        .collect()
}

fn fresh_catalog() -> Catalog {
    let mut c = Catalog::with_level(4);
    c.register(sj_datagen::Dataset::new(
        TABLE,
        Extent::unit(),
        base_rects(),
    ))
    .expect("register");
    c
}

/// Sorted copy for multiset comparison.
fn sorted(rects: &[Rect]) -> Vec<Rect> {
    let mut v = rects.to_vec();
    v.sort_by(|a, b| {
        (a.xlo, a.ylo, a.xhi, a.yhi)
            .partial_cmp(&(b.xlo, b.ylo, b.xhi, b.yhi))
            .expect("finite coordinates")
    });
    v
}

#[test]
fn concurrent_mutations_match_the_serial_schedule() {
    // The daemon under load.
    let catalog = Arc::new(OrderedRwLock::new(
        LockRank::Catalog,
        "test.catalog",
        fresh_catalog(),
    ));
    let service = CatalogService::new(Arc::clone(&catalog), DegradationPolicy::default());
    let server = Arc::new(Server::bind("127.0.0.1:0", service).expect("bind"));
    let addr = server.local_addr().expect("local_addr");
    let run = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run().expect("run"))
    };

    // N clients, each: insert its round batch, delete the batch's first
    // half two rounds later, compact every third round. All through the
    // stamped retrying client path.
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect_with_retry(addr).expect("connect");
                for r in 0..ROUNDS {
                    let batch = thread_batch(t, r);
                    let reply = client
                        .insert_batch_with_retry(TABLE, &batch)
                        .expect("insert");
                    assert!(!reply.deduplicated, "fresh stamps never dedup");
                    if r >= 2 {
                        let earlier = thread_batch(t, r - 2);
                        client
                            .delete_batch_with_retry(TABLE, &earlier[..BATCH / 2])
                            .expect("delete own earlier inserts");
                    }
                    if r % 3 == 2 {
                        client.compact(TABLE).expect("compact");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
    server.initiate_shutdown();
    // Unblock the accept loop so the run thread exits.
    drop(Client::connect(addr));
    run.join().expect("server thread");

    // The serial reference: the same batches, thread-major order, no
    // concurrency, no wire.
    let mut serial = fresh_catalog();
    for t in 0..THREADS {
        for r in 0..ROUNDS {
            serial
                .apply_delta(TABLE, &thread_batch(t, r), &[])
                .expect("serial insert");
            if r >= 2 {
                let earlier = thread_batch(t, r - 2);
                serial
                    .apply_delta(TABLE, &[], &earlier[..BATCH / 2])
                    .expect("serial delete");
            }
            if r % 3 == 2 {
                serial.compact(TABLE).expect("serial compact");
            }
        }
    }

    let soaked = catalog.read();
    assert_eq!(
        soaked.histogram(TABLE).expect("stats").persist().to_vec(),
        serial.histogram(TABLE).expect("stats").persist().to_vec(),
        "statistics after the soak must be byte-identical to the serial schedule"
    );
    assert_eq!(
        sorted(&soaked.dataset(TABLE).expect("ds").rects),
        sorted(&serial.dataset(TABLE).expect("ds").rects),
        "dataset contents must match as a multiset"
    );
}
