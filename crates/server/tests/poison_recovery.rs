//! Catalog poison recovery: a thread that panics while holding the
//! catalog *write* lock must not take the daemon down with it.
//!
//! `std::sync::RwLock` poisons itself when a writer panics; the ranked
//! wrappers in `sj_core::sync` deliberately recover the guard
//! (`PoisonError::into_inner`) because the catalog's mutation pipeline
//! never leaves the catalog half-written — the write lock is only held
//! for the in-memory commit of an already-validated, already-logged
//! batch (DESIGN.md §15). This test pins that contract end to end over
//! the wire: after poisoning, every request must answer exactly as a
//! cold daemon over the same catalog would, including further
//! mutations.

use sj_core::sync::{LockRank, OrderedRwLock};
use sj_geo::{Extent, Rect};
use sj_query::{Catalog, DegradationPolicy};
use sj_server::{CatalogService, Client, Server};
use std::sync::Arc;

fn rects(offset: f64) -> Vec<Rect> {
    (0..30)
        .map(|i| {
            let x = (i % 6) as f64 * 0.06 + offset;
            let y = (i / 6) as f64 * 0.06 + offset;
            Rect::new(x, y, x + 0.05, y + 0.05)
        })
        .collect()
}

fn fresh_catalog() -> Catalog {
    let mut c = Catalog::with_level(4);
    c.register(sj_datagen::Dataset::new("a", Extent::unit(), rects(0.001)))
        .expect("register a");
    c.register(sj_datagen::Dataset::new("b", Extent::unit(), rects(0.013)))
        .expect("register b");
    c
}

struct Daemon {
    catalog: Arc<OrderedRwLock<Catalog>>,
    server: Arc<Server<CatalogService>>,
    run: Option<std::thread::JoinHandle<()>>,
    addr: std::net::SocketAddr,
}

impl Daemon {
    fn start() -> Daemon {
        let catalog = Arc::new(OrderedRwLock::new(
            LockRank::Catalog,
            "test.catalog",
            fresh_catalog(),
        ));
        let service = CatalogService::new(Arc::clone(&catalog), DegradationPolicy::default());
        let server = Arc::new(Server::bind("127.0.0.1:0", service).expect("bind"));
        let addr = server.local_addr().expect("local_addr");
        let run = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.run().expect("run"))
        };
        Daemon {
            catalog,
            server,
            run: Some(run),
            addr,
        }
    }

    fn client(&self) -> Client {
        Client::connect_with_retry(self.addr).expect("connect")
    }

    fn stop(mut self) {
        self.server.initiate_shutdown();
        drop(Client::connect(self.addr));
        if let Some(run) = self.run.take() {
            run.join().expect("server thread");
        }
    }
}

/// The full request battery, answered into a comparable transcript.
fn transcript(client: &mut Client) -> Vec<String> {
    let mut out = Vec::new();
    let est = client.estimate("a", "b").expect("estimate");
    out.push(format!(
        "estimate {} {}",
        est.selectivity.to_bits(),
        est.pairs.to_bits()
    ));
    let window = Rect::new(0.1, 0.1, 0.4, 0.4);
    let count = client.window_count("a", &window).expect("window_count");
    out.push(format!("window {}", count.to_bits()));
    out.push(format!(
        "explain {}",
        client
            .explain(&["a".to_string(), "b".to_string()])
            .expect("explain")
    ));
    out.push(format!("tables {:?}", client.tables().expect("tables")));
    let outcome = client.catalog_estimate("a", "b").expect("catalog_estimate");
    out.push(format!(
        "outcome {} {} {} {}",
        outcome.pairs.to_bits(),
        outcome.selectivity.to_bits(),
        outcome.tier_name,
        outcome.degraded
    ));
    out
}

/// Mutations that must still work after the poison, answered into the
/// same transcript form.
fn mutate_and_read(client: &mut Client) -> Vec<String> {
    let mut out = Vec::new();
    let batch = rects(0.407);
    let reply = client.insert_batch_with_retry("a", &batch).expect("insert");
    out.push(format!(
        "insert {} {} {}",
        reply.applied, reply.compacted, reply.deduplicated
    ));
    let reply = client
        .delete_batch_with_retry("a", &batch[..5])
        .expect("delete");
    out.push(format!(
        "delete {} {} {}",
        reply.applied, reply.compacted, reply.deduplicated
    ));
    let est = client.estimate("a", "b").expect("estimate after mutation");
    out.push(format!(
        "estimate {} {}",
        est.selectivity.to_bits(),
        est.pairs.to_bits()
    ));
    out
}

#[test]
fn poisoned_catalog_answers_byte_identical_to_cold() {
    let poisoned = Daemon::start();

    // Poison the lock: a thread panics while holding the write guard —
    // exactly what a handler panicking mid-commit would leave behind.
    let catalog = Arc::clone(&poisoned.catalog);
    let panicker = std::thread::spawn(move || {
        let _guard = catalog.write();
        panic!("injected handler panic while holding the catalog write lock");
    });
    assert!(panicker.join().is_err(), "the panic must propagate");

    // The daemon must neither hang nor error: the full read battery
    // and further mutations answer exactly as a cold daemon does.
    let cold = Daemon::start();
    let mut poisoned_client = poisoned.client();
    let mut cold_client = cold.client();

    assert_eq!(
        transcript(&mut poisoned_client),
        transcript(&mut cold_client),
        "read requests after the poison must match a cold daemon"
    );
    assert_eq!(
        mutate_and_read(&mut poisoned_client),
        mutate_and_read(&mut cold_client),
        "mutations after the poison must match a cold daemon"
    );

    poisoned.stop();
    cold.stop();
}
