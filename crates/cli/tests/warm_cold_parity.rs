//! Warm-server vs cold-CLI parity.
//!
//! The acceptance bar for the daemon: a warm `sj-server` answers
//! estimate requests **byte-identical** to the cold CLI, under at least
//! four concurrent clients. Estimates here are pure functions of the
//! statistics (the paper's Eq. 1–5 arithmetic), so residency must not
//! change a single output byte.

use sj_cli::run;
use std::path::PathBuf;

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_string()).collect()
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("sjsel_parity_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

/// Generates two datasets under a per-test prefix (tests in this binary
/// run concurrently and must not race on shared files).
fn datasets(prefix: &str) -> (String, String) {
    let a_csv = tmp(&format!("{prefix}_a.csv"));
    let b_csv = tmp(&format!("{prefix}_b.csv"));
    run(&argv(&[
        "generate", "scrc", "--scale", "0.01", "--out", &a_csv,
    ]))
    .unwrap();
    run(&argv(&[
        "generate", "sura", "--scale", "0.01", "--out", &b_csv,
    ]))
    .unwrap();
    (a_csv, b_csv)
}

/// Boots a daemon over the given datasets on an OS-assigned port and
/// waits for readiness; returns the address and a join handle.
fn boot(
    files: &[&str],
    ready_name: &str,
    extra: &[&str],
) -> (
    String,
    std::thread::JoinHandle<Result<sj_cli::CliOutput, sj_cli::CliError>>,
) {
    let ready = tmp(ready_name);
    drop(std::fs::remove_file(&ready));
    let mut args = vec!["serve".to_string()];
    args.extend(files.iter().map(|f| (*f).to_string()));
    args.extend(argv(&[
        "--level",
        "4",
        "--addr",
        "127.0.0.1:0",
        "--ready-file",
        &ready,
    ]));
    args.extend(argv(extra));
    let daemon = std::thread::spawn(move || run(&args));
    let ready_path = PathBuf::from(&ready);
    let mut tries = 0;
    let addr = loop {
        match std::fs::read_to_string(&ready_path) {
            Ok(s) if s.ends_with('\n') => break s.trim().to_string(),
            _ if tries > 500 => panic!("server never became ready"),
            _ => {
                tries += 1;
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
    };
    (addr, daemon)
}

#[test]
fn warm_answers_are_byte_identical_to_cold_under_concurrency() {
    let (a_csv, b_csv) = datasets("parity");

    // Cold path: a full process-shaped run per request, statistics
    // rebuilt from the CSVs every time.
    let cold_text = run(&argv(&["catalog-estimate", &a_csv, &b_csv, "--level", "4"])).unwrap();
    let cold_json = run(&argv(&[
        "catalog-estimate",
        &a_csv,
        &b_csv,
        "--level",
        "4",
        "--json",
    ]))
    .unwrap();

    // Cold primary estimate over persisted statistics files.
    let a_hist = tmp("parity_a.hist");
    let b_hist = tmp("parity_b.hist");
    run(&argv(&[
        "build-histogram",
        &a_csv,
        "--level",
        "4",
        "--out",
        &a_hist,
    ]))
    .unwrap();
    run(&argv(&[
        "build-histogram",
        &b_csv,
        "--level",
        "4",
        "--out",
        &b_hist,
    ]))
    .unwrap();
    let cold_estimate = run(&argv(&["estimate", &a_hist, &b_hist])).unwrap();

    let (addr, daemon) = boot(&[&a_csv, &b_csv], "parity_ready.txt", &[]);

    // Six concurrent clients, each comparing every warm answer against
    // the cold output bytes.
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let (addr, cold_text, cold_json, cold_estimate) =
                (&addr, &cold_text, &cold_json, &cold_estimate);
            scope.spawn(move || {
                for _ in 0..5 {
                    let warm_text = run(&argv(&[
                        "client",
                        "--addr",
                        addr,
                        "catalog-estimate",
                        "parity_a",
                        "parity_b",
                    ]))
                    .unwrap();
                    assert_eq!(warm_text.stdout, cold_text.stdout, "text parity");
                    assert_eq!(warm_text.warnings, cold_text.warnings, "warning parity");

                    let warm_json = run(&argv(&[
                        "client",
                        "--addr",
                        addr,
                        "catalog-estimate",
                        "parity_a",
                        "parity_b",
                        "--json",
                    ]))
                    .unwrap();
                    assert_eq!(warm_json.stdout, cold_json.stdout, "json parity");

                    let warm_estimate = run(&argv(&[
                        "client", "--addr", addr, "estimate", "parity_a", "parity_b",
                    ]))
                    .unwrap();
                    assert_eq!(
                        warm_estimate.stdout, cold_estimate.stdout,
                        "estimate parity"
                    );
                }
            });
        }
    });

    run(&argv(&["client", "--addr", &addr, "shutdown"])).unwrap();
    daemon.join().unwrap().unwrap();
}

/// The full daemon lifecycle across a restart: mutate, compact (which
/// makes the source CSVs stale relative to the statistics), mutate
/// again, shut down — then a fresh daemon over the SAME original CSVs
/// must recover the exact state from the compaction snapshot, the base
/// envelope, and the pending WAL. This exact sequence used to fail
/// startup with "statistics cover N objects but the dataset has M".
#[test]
fn daemon_restart_after_mutations_and_compaction_recovers() {
    let (a_csv, b_csv) = datasets("parity3");
    let stats_dir = tmp("parity3_stats");
    drop(std::fs::remove_dir_all(&stats_dir));
    // Batch file: a slice of b's rectangles (guaranteed-valid data),
    // inserted before the restart and deleted again after it.
    let batch = tmp("parity3_batch.csv");
    let b_text = std::fs::read_to_string(&b_csv).unwrap();
    let slice: Vec<&str> = b_text.lines().take(50).collect();
    std::fs::write(&batch, format!("{}\n", slice.join("\n"))).unwrap();

    let stats_flag = ["--stats-dir", &stats_dir];
    let (addr, daemon) = boot(&[&a_csv, &b_csv], "parity3_ready.txt", &stats_flag);
    let estimate = |addr: &str| {
        run(&argv(&[
            "client",
            "--addr",
            addr,
            "estimate",
            "parity3_a",
            "parity3_b",
        ]))
        .unwrap()
    };
    let baseline = estimate(&addr);
    run(&argv(&[
        "client",
        "--addr",
        &addr,
        "insert-batch",
        "parity3_a",
        &batch,
    ]))
    .unwrap();
    assert_ne!(estimate(&addr).stdout, baseline.stdout);
    run(&argv(&["client", "--addr", &addr, "compact", "parity3_a"])).unwrap();
    // A post-compaction batch left pending in the WAL across the restart.
    run(&argv(&[
        "client",
        "--addr",
        &addr,
        "insert-batch",
        "parity3_b",
        &batch,
    ]))
    .unwrap();
    let pre_restart = estimate(&addr);
    run(&argv(&["client", "--addr", &addr, "shutdown"])).unwrap();
    daemon.join().unwrap().unwrap();
    let sd = std::path::Path::new(&stats_dir);
    assert!(
        sd.join("parity3_a.base").exists(),
        "compaction must leave a dataset snapshot"
    );
    assert!(
        sd.join("parity3_b.wal").exists(),
        "the pending batch must leave a WAL"
    );

    // Restart over the original CSVs: table a's statistics no longer
    // describe them (the folded inserts live only in the snapshot).
    let (addr, daemon) = boot(&[&a_csv, &b_csv], "parity3_ready2.txt", &stats_flag);
    assert_eq!(
        estimate(&addr).stdout,
        pre_restart.stdout,
        "restart must not change a single output byte"
    );
    // Deleting the inserted rectangles restores the baseline bytes.
    for table in ["parity3_a", "parity3_b"] {
        run(&argv(&[
            "client",
            "--addr",
            &addr,
            "delete-batch",
            table,
            &batch,
        ]))
        .unwrap();
    }
    assert_eq!(estimate(&addr).stdout, baseline.stdout);
    run(&argv(&["client", "--addr", &addr, "shutdown"])).unwrap();
    daemon.join().unwrap().unwrap();
}

#[test]
fn warm_server_reuses_saved_statistics_files() {
    let (a_csv, b_csv) = datasets("parity2");
    // Persist statistics under the file-stem naming convention.
    let stats_dir = tmp("parity_stats");
    std::fs::create_dir_all(&stats_dir).unwrap();
    for (csv, stem) in [(&a_csv, "parity2_a"), (&b_csv, "parity2_b")] {
        run(&argv(&[
            "build-histogram",
            csv,
            "--level",
            "4",
            "--out",
            &format!("{stats_dir}/{stem}.hist"),
        ]))
        .unwrap();
    }

    let ready = tmp("parity_stats_ready.txt");
    drop(std::fs::remove_file(&ready));
    let args = argv(&[
        "serve",
        &a_csv,
        &b_csv,
        "--level",
        "4",
        "--stats-dir",
        &stats_dir,
        "--addr",
        "127.0.0.1:0",
        "--ready-file",
        &ready,
    ]);
    let daemon = std::thread::spawn(move || run(&args));
    let mut tries = 0;
    let addr = loop {
        match std::fs::read_to_string(&ready) {
            Ok(s) if s.ends_with('\n') => break s.trim().to_string(),
            _ if tries > 500 => panic!("server never became ready"),
            _ => {
                tries += 1;
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
    };

    // The daemon's answers over loaded statistics match the cold
    // catalog-estimate run over the same statistics directory.
    let cold = run(&argv(&[
        "catalog-estimate",
        &a_csv,
        &b_csv,
        "--level",
        "4",
        "--stats-dir",
        &stats_dir,
    ]))
    .unwrap();
    let warm = run(&argv(&[
        "client",
        "--addr",
        &addr,
        "catalog-estimate",
        "parity2_a",
        "parity2_b",
    ]))
    .unwrap();
    assert_eq!(warm.stdout, cold.stdout);
    assert!(warm.stdout.contains("tier primary"), "{}", warm.stdout);

    run(&argv(&["client", "--addr", &addr, "shutdown"])).unwrap();
    daemon.join().unwrap().unwrap();
}
