//! Documentation drift guards.
//!
//! `docs/CLI.md` documents the `sjsel` exit-code taxonomy and the wire
//! status codes as markdown tables. These tests parse those tables out
//! of the prose and diff them against the actual constants
//! (`sj_cli::exit_code`, `sj_server::wire::status`), so the doc cannot
//! silently drift from the code. The in-binary `USAGE` text is checked
//! the same way: every subcommand documented in docs/CLI.md must appear
//! in `sjsel --help` and vice versa.

use std::collections::BTreeMap;
use std::path::PathBuf;

fn docs_cli_md() -> String {
    // CARGO_MANIFEST_DIR = crates/cli; docs/ sits at the workspace root.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/CLI.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Parses the first markdown table following the given heading, keyed
/// by the integer in the first column; the value is the second column.
fn table_after(doc: &str, heading: &str) -> BTreeMap<i64, String> {
    let start = doc
        .find(heading)
        .unwrap_or_else(|| panic!("docs/CLI.md lost its {heading:?} section"));
    let mut rows = BTreeMap::new();
    let mut in_table = false;
    for line in doc[start..].lines().skip(1) {
        let line = line.trim();
        if line.starts_with('|') {
            in_table = true;
            let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
            let Some(code) = cells.first().and_then(|c| c.parse::<i64>().ok()) else {
                continue; // header or separator row
            };
            let meaning = cells.get(1).copied().unwrap_or_default();
            assert!(
                rows.insert(code, meaning.to_string()).is_none(),
                "{heading}: duplicate code {code}"
            );
        } else if in_table {
            break; // table ended
        }
    }
    assert!(!rows.is_empty(), "no table found after {heading:?}");
    rows
}

#[test]
fn exit_code_table_matches_the_exit_code_module() {
    let doc = docs_cli_md();
    let table = table_after(&doc, "### Exit codes");

    let expected: &[(i64, &str)] = &[
        (0, "success"),
        (i64::from(sj_cli::exit_code::RUNTIME), "runtime"),
        (i64::from(sj_cli::exit_code::USAGE), "usage"),
        (i64::from(sj_cli::exit_code::IO), "I/O"),
        (i64::from(sj_cli::exit_code::CORRUPT), "corrupt"),
        (i64::from(sj_cli::exit_code::MISMATCH), "mismatch"),
        (
            i64::from(sj_cli::exit_code::INVALID_DATA),
            "invalid dataset",
        ),
        (i64::from(sj_cli::exit_code::EXHAUSTED), "tier"),
        (i64::from(sj_cli::exit_code::OVERLOADED), "overloaded"),
    ];
    assert_eq!(
        table.keys().copied().collect::<Vec<_>>(),
        expected.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
        "documented exit codes diverge from sj_cli::exit_code: {table:?}"
    );
    for (code, needle) in expected {
        let meaning = &table[code];
        assert!(
            meaning.to_lowercase().contains(&needle.to_lowercase()),
            "exit code {code} documented as {meaning:?}, expected it to mention {needle:?}"
        );
    }
}

#[test]
fn wire_status_table_matches_the_wire_status_module() {
    use sj_server::wire::status;
    let doc = docs_cli_md();
    let table = table_after(&doc, "### Wire status codes");

    // The wire table's second column is the constant's name in backticks.
    let codes: &[u8] = &[
        status::OK,
        status::RUNTIME,
        status::USAGE,
        status::IO,
        status::CORRUPT,
        status::MISMATCH,
        status::INVALID_DATA,
        status::EXHAUSTED,
        status::OVERLOADED,
    ];
    assert_eq!(
        table.keys().copied().collect::<Vec<_>>(),
        codes.iter().map(|c| i64::from(*c)).collect::<Vec<_>>(),
        "documented wire statuses diverge from sj_server::wire::status: {table:?}"
    );
    for code in codes {
        let documented = &table[&i64::from(*code)];
        let expected = status::name(*code).replace('-', "_").to_uppercase();
        assert_eq!(
            documented.trim_matches('`'),
            expected,
            "wire status {code} documented under the wrong name"
        );
    }
}

#[test]
fn every_documented_subcommand_is_in_the_usage_text_and_vice_versa() {
    let doc = docs_cli_md();
    // The usage fence right under the `## sjsel` heading.
    let start = doc.find("## `sjsel`").expect("sjsel section");
    let fence = &doc[start..];
    let open = fence.find("```").expect("usage fence opens") + 3;
    let close = open + fence[open..].find("```").expect("usage fence closes");
    let documented: Vec<&str> = fence[open..close]
        .lines()
        .filter_map(|l| l.trim().strip_prefix("sjsel "))
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    assert!(!documented.is_empty(), "no sjsel usage lines found");

    let help: Vec<&str> = sj_cli::USAGE
        .lines()
        .filter_map(|l| l.trim().strip_prefix("sjsel "))
        .filter_map(|l| l.split_whitespace().next())
        // Drop the banner line ("sjsel — ..."): subcommands are
        // ascii-lowercase words.
        .filter(|s| s.chars().all(|c| c.is_ascii_lowercase() || c == '-'))
        .collect();
    for sub in &documented {
        assert!(
            help.contains(sub),
            "docs/CLI.md documents `sjsel {sub}` but the --help text does not"
        );
    }
    for sub in &help {
        assert!(
            documented.contains(sub),
            "--help lists `sjsel {sub}` but docs/CLI.md does not document it"
        );
    }
    for sub in [
        "serve",
        "client",
        "estimate",
        "catalog-estimate",
        "apply-delta",
        "compact",
    ] {
        assert!(
            documented.contains(&sub),
            "expected `sjsel {sub}` documented"
        );
    }
}

#[test]
fn admission_control_flags_are_documented_everywhere() {
    // The serve/client admission flags must appear in both the
    // in-binary usage text and docs/CLI.md — a flag that exists in only
    // one place is doc drift.
    let doc = docs_cli_md();
    for flag in ["--max-connections", "--io-timeout-ms", "--timeout-ms"] {
        assert!(
            sj_cli::USAGE.contains(flag),
            "sjsel --help lost the {flag} flag"
        );
        assert!(
            doc.contains(flag),
            "docs/CLI.md does not document the {flag} flag"
        );
    }
}

#[test]
fn wire_opcode_table_matches_opcode_all() {
    use sj_server::Opcode;
    let doc = docs_cli_md();
    let table = table_after(&doc, "### Wire opcodes");

    let actual: Vec<(i64, String)> = Opcode::ALL
        .iter()
        .map(|op| (i64::from(op.code()), format!("{op:?}")))
        .collect();
    assert_eq!(
        table.keys().copied().collect::<Vec<_>>(),
        actual.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
        "documented opcodes diverge from sj_server::Opcode::ALL: {table:?}"
    );
    for (code, name) in &actual {
        let documented = table[code].trim_matches('`');
        assert_eq!(
            documented, name,
            "opcode {code} documented as {documented:?}, the enum calls it {name:?}"
        );
    }
}

#[test]
fn lint_rule_table_matches_the_rule_registry() {
    use sj_lint::rules::RuleId;
    let doc = docs_cli_md();
    // The `### Rules` table under the sj-lint section: first column is
    // the rule code in backticks, second the slug in backticks.
    let start = doc
        .find("### Rules")
        .expect("docs/CLI.md lost its sj-lint Rules section");
    let mut tabled: Vec<(String, String)> = Vec::new();
    let mut in_table = false;
    for line in doc[start..].lines().skip(1) {
        let line = line.trim();
        if line.starts_with('|') {
            in_table = true;
            let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
            let (Some(code), Some(slug)) = (cells.first(), cells.get(1)) else {
                continue;
            };
            if code.starts_with('`') {
                tabled.push((
                    code.trim_matches('`').to_string(),
                    slug.trim_matches('`').to_string(),
                ));
            }
        } else if in_table {
            break;
        }
    }
    let actual: Vec<(String, String)> = RuleId::ALL
        .iter()
        .map(|r| (r.code().to_string(), r.slug().to_string()))
        .collect();
    assert_eq!(
        tabled, actual,
        "the docs/CLI.md rule table diverges from sj_lint::rules::RuleId::ALL"
    );
}

#[test]
fn subcommand_table_matches_the_usage_text() {
    let doc = docs_cli_md();
    // The `### Subcommands` table's first column is the subcommand in
    // backticks; diff it against the subcommands `--help` advertises.
    let start = doc
        .find("### Subcommands")
        .expect("docs/CLI.md lost its Subcommands section");
    let mut tabled = Vec::new();
    let mut in_table = false;
    for line in doc[start..].lines().skip(1) {
        let line = line.trim();
        if line.starts_with('|') {
            in_table = true;
            let first = line
                .trim_matches('|')
                .split('|')
                .next()
                .unwrap_or("")
                .trim();
            if first.starts_with('`') {
                tabled.push(first.trim_matches('`').to_string());
            }
        } else if in_table {
            break;
        }
    }
    assert!(!tabled.is_empty(), "no subcommand table rows found");

    let help: Vec<&str> = sj_cli::USAGE
        .lines()
        .filter_map(|l| l.trim().strip_prefix("sjsel "))
        .filter_map(|l| l.split_whitespace().next())
        .filter(|s| s.chars().all(|c| c.is_ascii_lowercase() || c == '-'))
        .collect();
    for sub in &tabled {
        assert!(
            help.contains(&sub.as_str()),
            "subcommand table documents `{sub}` but --help does not list it"
        );
    }
    for sub in &help {
        assert!(
            tabled.iter().any(|t| t == sub),
            "--help lists `sjsel {sub}` but the subcommand table lacks a row for it"
        );
    }
}
