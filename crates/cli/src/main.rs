//! `sjsel` binary: thin wrapper over the [`sj_cli`] library.
//!
//! Warnings (validation repairs/drops, degraded estimates) go to stderr
//! so stdout stays pipeable; failures exit with the documented code from
//! [`sj_cli::exit_code`]. A closed stdout (e.g. piping into `head`) is a
//! silent success, not a panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match sj_cli::run(&args) {
        Ok(output) => {
            for w in &output.warnings {
                eprintln!("warning: {w}");
            }
            if let Err(e) = writeln!(std::io::stdout(), "{output}") {
                if e.kind() == std::io::ErrorKind::BrokenPipe {
                    return;
                }
                eprintln!("error: failed to write output: {e}");
                std::process::exit(sj_cli::exit_code::IO);
            }
        }
        Err(e) => {
            eprintln!("error: {}", e.message);
            std::process::exit(e.code);
        }
    }
}
