//! `sjsel` binary: thin wrapper over the [`sj_cli`] library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match sj_cli::run(&args) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("{}", e.message);
            std::process::exit(e.code);
        }
    }
}
