//! Implementation of the `sjsel` command-line tool.
//!
//! Subcommands:
//!
//! * `generate <preset> [--scale F] --out FILE.csv` — materialize one of
//!   the paper's datasets (ts, tcb, cas, car, sp, spg, scrc, sura).
//! * `stats FILE.csv` — cardinality, coverage, average extents.
//! * `build-histogram FILE.csv --level L --out FILE.hist
//!   [--scheme gh|gh-basic|ph] [--extent x0,y0,x1,y1]` — build and persist
//!   a histogram file.
//! * `estimate A.hist B.hist` — estimate the join selectivity from two
//!   histogram files (schemes must match; grids must be compatible).
//! * `exact-join A.csv B.csv [--backend rtree|sweep]` — run the exact
//!   filter-step join.
//! * `window-count FILE.hist --window x0,y0,x1,y1` — estimate how many
//!   objects intersect a window (GH files only).
//!
//! The logic lives in this library crate so it is unit-testable; the
//! binary (`src/main.rs`) is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sj_core::{
    presets, Dataset, Extent, GhBasicHistogram, GhHistogram, Grid, JoinBaseline, Parallelism,
    PhHistogram, RTreeConfig, Rect,
};
use std::fmt::Write as _;
use std::path::Path;

/// A CLI failure: message for stderr plus an exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 2,
        }
    }

    fn runtime(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 1,
        }
    }
}

/// Runs the CLI on pre-split arguments (excluding `argv[0]`) and returns
/// the stdout payload.
///
/// # Errors
/// Returns a [`CliError`] with a usage (2) or runtime (1) exit code.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::usage(USAGE.to_string()));
    };
    match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "stats" => cmd_stats(rest),
        "build-histogram" => cmd_build_histogram(rest),
        "estimate" => cmd_estimate(rest),
        "exact-join" => cmd_exact_join(rest),
        "window-count" => cmd_window_count(rest),
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => Err(CliError::usage(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
sjsel — spatial join selectivity toolkit

USAGE:
  sjsel generate <ts|tcb|cas|car|sp|spg|scrc|sura> [--scale F] --out FILE.{csv|bin}
  sjsel stats FILE.csv
  sjsel build-histogram FILE.csv --level L --out FILE.hist
        [--scheme gh|gh-basic|ph] [--sparse] [--extent x0,y0,x1,y1] [--threads N]
  sjsel estimate A.hist B.hist
  sjsel exact-join A.csv B.csv [--backend rtree|sweep] [--threads N]
  sjsel window-count FILE.hist --window x0,y0,x1,y1

--threads defaults to the machine's available parallelism; results are
identical at every thread count.";

/// Pulls the value following a `--flag`, removing both from `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, CliError> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(CliError::usage(format!("missing value for {flag}")));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

/// Parses `--threads N` (default: available parallelism).
fn take_threads(args: &mut Vec<String>) -> Result<Parallelism, CliError> {
    match take_flag(args, "--threads")? {
        Some(s) => {
            let n: usize = s
                .parse()
                .map_err(|e| CliError::usage(format!("bad --threads: {e}")))?;
            Ok(Parallelism::with_threads(n))
        }
        None => Ok(Parallelism::default()),
    }
}

fn parse_rect(spec: &str) -> Result<Rect, CliError> {
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.len() != 4 {
        return Err(CliError::usage(format!(
            "expected x0,y0,x1,y1 — got {spec:?}"
        )));
    }
    let mut vals = [0f64; 4];
    for (v, p) in vals.iter_mut().zip(&parts) {
        *v = p
            .trim()
            .parse()
            .map_err(|e| CliError::usage(format!("bad coordinate {p:?}: {e}")))?;
    }
    Ok(Rect::new(vals[0], vals[1], vals[2], vals[3]))
}

fn load_dataset(path: &str) -> Result<Dataset, CliError> {
    let p = Path::new(path);
    let result = if p.extension().is_some_and(|e| e == "bin") {
        Dataset::load_bin(p)
    } else {
        Dataset::load_csv(p)
    };
    result.map_err(|e| CliError::runtime(format!("failed to load {path}: {e}")))
}

fn cmd_generate(args: &[String]) -> Result<String, CliError> {
    let mut args = args.to_vec();
    let scale: f64 = take_flag(&mut args, "--scale")?.map_or(Ok(1.0), |s| {
        s.parse()
            .map_err(|e| CliError::usage(format!("bad --scale: {e}")))
    })?;
    let out = take_flag(&mut args, "--out")?
        .ok_or_else(|| CliError::usage("generate requires --out FILE.csv"))?;
    let [preset] = args.as_slice() else {
        return Err(CliError::usage("generate takes exactly one preset name"));
    };
    let dataset = match preset.as_str() {
        "ts" => presets::ts(scale),
        "tcb" => presets::tcb(scale),
        "cas" => presets::cas(scale),
        "car" => presets::car(scale),
        "sp" => presets::sp(scale),
        "spg" => presets::spg(scale),
        "scrc" => presets::scrc(scale),
        "sura" => presets::sura(scale),
        other => return Err(CliError::usage(format!("unknown preset {other:?}"))),
    };
    let out_path = Path::new(&out);
    if out_path.extension().is_some_and(|e| e == "bin") {
        dataset.save_bin(out_path)
    } else {
        dataset.save_csv(out_path)
    }
    .map_err(|e| CliError::runtime(format!("failed to write {out}: {e}")))?;
    Ok(format!(
        "wrote {} rects ({}) to {out}",
        dataset.len(),
        dataset.name
    ))
}

fn cmd_stats(args: &[String]) -> Result<String, CliError> {
    let [path] = args else {
        return Err(CliError::usage("stats takes exactly one CSV path"));
    };
    let ds = load_dataset(path)?;
    let s = ds.stats();
    let mut out = String::new();
    let _ = writeln!(out, "dataset        {}", ds.name);
    let _ = writeln!(out, "count          {}", s.count);
    let _ = writeln!(out, "coverage       {:.6}", s.coverage);
    let _ = writeln!(out, "avg width      {:.6}", s.avg_width);
    let _ = writeln!(out, "avg height     {:.6}", s.avg_height);
    let _ = write!(out, "degenerate     {:.1}%", s.degenerate_fraction * 100.0);
    Ok(out)
}

fn cmd_build_histogram(args: &[String]) -> Result<String, CliError> {
    let mut args = args.to_vec();
    let level: u32 = take_flag(&mut args, "--level")?
        .ok_or_else(|| CliError::usage("build-histogram requires --level"))?
        .parse()
        .map_err(|e| CliError::usage(format!("bad --level: {e}")))?;
    let out = take_flag(&mut args, "--out")?
        .ok_or_else(|| CliError::usage("build-histogram requires --out"))?;
    let scheme = take_flag(&mut args, "--scheme")?.unwrap_or_else(|| "gh".to_string());
    let par = take_threads(&mut args)?;
    let sparse = args.iter().any(|a| a == "--sparse");
    args.retain(|a| a != "--sparse");
    let extent = match take_flag(&mut args, "--extent")? {
        Some(spec) => Extent::new(parse_rect(&spec)?),
        None => Extent::unit(),
    };
    let [path] = args.as_slice() else {
        return Err(CliError::usage(
            "build-histogram takes exactly one CSV path",
        ));
    };
    let ds = load_dataset(path)?;
    let grid = Grid::new(level, extent).map_err(|e| CliError::usage(format!("bad grid: {e}")))?;
    let threads = par.threads();
    let (bytes, label) = match scheme.as_str() {
        "gh" if sparse => (
            GhHistogram::build_parallel(grid, &ds.rects, threads).to_sparse_bytes(),
            "GH (sparse)",
        ),
        _ if sparse => {
            return Err(CliError::usage(
                "--sparse is only supported for --scheme gh",
            ))
        }
        "gh" => (
            GhHistogram::build_parallel(grid, &ds.rects, threads).to_bytes(),
            "GH",
        ),
        "gh-basic" => (
            GhBasicHistogram::build_parallel(grid, &ds.rects, threads).to_bytes(),
            "GH-basic",
        ),
        "ph" => (
            PhHistogram::build_parallel(grid, &ds.rects, threads).to_bytes(),
            "PH",
        ),
        other => return Err(CliError::usage(format!("unknown scheme {other:?}"))),
    };
    std::fs::write(&out, &bytes)
        .map_err(|e| CliError::runtime(format!("failed to write {out}: {e}")))?;
    Ok(format!(
        "built {label} histogram (level {level}, {} bytes) from {} rects -> {out}",
        bytes.len(),
        ds.len()
    ))
}

/// Loads any of the three histogram formats, returning an estimate
/// closure keyed by the magic number.
fn cmd_estimate(args: &[String]) -> Result<String, CliError> {
    let [a_path, b_path] = args else {
        return Err(CliError::usage(
            "estimate takes exactly two histogram paths",
        ));
    };
    let read = |p: &String| {
        std::fs::read(p).map_err(|e| CliError::runtime(format!("failed to read {p}: {e}")))
    };
    let (a_bytes, b_bytes) = (read(a_path)?, read(b_path)?);

    // Dense or sparse GH files mix freely; the in-memory form is shared.
    let gh = |bytes: &[u8]| {
        GhHistogram::from_bytes(bytes).or_else(|_| GhHistogram::from_sparse_bytes(bytes))
    };
    let est = if let (Ok(a), Ok(b)) = (gh(&a_bytes), gh(&b_bytes)) {
        a.estimate(&b)
    } else if let (Ok(a), Ok(b)) = (
        GhBasicHistogram::from_bytes(&a_bytes),
        GhBasicHistogram::from_bytes(&b_bytes),
    ) {
        a.estimate(&b)
    } else if let (Ok(a), Ok(b)) = (
        PhHistogram::from_bytes(&a_bytes),
        PhHistogram::from_bytes(&b_bytes),
    ) {
        a.estimate(&b)
    } else {
        return Err(CliError::runtime(
            "could not decode both files with a common scheme (gh, gh-basic, ph)".to_string(),
        ));
    }
    .map_err(|e| CliError::runtime(format!("estimation failed: {e}")))?;

    Ok(format!(
        "selectivity {:.6e}\nestimated pairs {:.0}",
        est.selectivity, est.pairs
    ))
}

fn cmd_exact_join(args: &[String]) -> Result<String, CliError> {
    let mut args = args.to_vec();
    let backend = take_flag(&mut args, "--backend")?.unwrap_or_else(|| "rtree".to_string());
    let par = take_threads(&mut args)?;
    let [a_path, b_path] = args.as_slice() else {
        return Err(CliError::usage("exact-join takes exactly two CSV paths"));
    };
    let (a, b) = (load_dataset(a_path)?, load_dataset(b_path)?);
    let baseline = match backend.as_str() {
        "rtree" => JoinBaseline::compute_with_parallelism(&a, &b, RTreeConfig::default(), par),
        "sweep" => JoinBaseline::compute_with_backend_parallelism(
            &a,
            &b,
            sj_core::ExactBackend::PlaneSweep,
            par,
        ),
        other => return Err(CliError::usage(format!("unknown backend {other:?}"))),
    };
    Ok(format!(
        "pairs {}\nselectivity {:.6e}\njoin time {:?}",
        baseline.pairs, baseline.selectivity, baseline.join_time
    ))
}

fn cmd_window_count(args: &[String]) -> Result<String, CliError> {
    let mut args = args.to_vec();
    let window = take_flag(&mut args, "--window")?
        .ok_or_else(|| CliError::usage("window-count requires --window x0,y0,x1,y1"))?;
    let window = parse_rect(&window)?;
    let [path] = args.as_slice() else {
        return Err(CliError::usage(
            "window-count takes exactly one histogram path",
        ));
    };
    let bytes = std::fs::read(path)
        .map_err(|e| CliError::runtime(format!("failed to read {path}: {e}")))?;
    let h = GhHistogram::from_bytes(&bytes)
        .or_else(|_| GhHistogram::from_sparse_bytes(&bytes))
        .map_err(|e| CliError::runtime(format!("not a GH histogram file: {e}")))?;
    Ok(format!(
        "estimated objects intersecting window: {:.0}",
        h.estimate_window_count(&window)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("sjsel_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&argv(&["--help"])).unwrap().contains("USAGE"));
        let err = run(&argv(&["frobnicate"])).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("unknown command"));
        assert_eq!(run(&[]).unwrap_err().code, 2);
    }

    #[test]
    fn generate_stats_roundtrip() {
        let csv = tmp("scrc_small.csv");
        let out = run(&argv(&[
            "generate", "scrc", "--scale", "0.001", "--out", &csv,
        ]))
        .unwrap();
        assert!(out.contains("100 rects"), "{out}");
        let stats = run(&argv(&["stats", &csv])).unwrap();
        assert!(stats.contains("count          100"), "{stats}");
    }

    #[test]
    fn full_pipeline_generate_build_estimate() {
        let a_csv = tmp("pipe_a.csv");
        let b_csv = tmp("pipe_b.csv");
        run(&argv(&[
            "generate", "scrc", "--scale", "0.01", "--out", &a_csv,
        ]))
        .unwrap();
        run(&argv(&[
            "generate", "sura", "--scale", "0.01", "--out", &b_csv,
        ]))
        .unwrap();

        let a_hist = tmp("pipe_a.hist");
        let b_hist = tmp("pipe_b.hist");
        run(&argv(&[
            "build-histogram",
            &a_csv,
            "--level",
            "5",
            "--out",
            &a_hist,
        ]))
        .unwrap();
        run(&argv(&[
            "build-histogram",
            &b_csv,
            "--level",
            "5",
            "--out",
            &b_hist,
        ]))
        .unwrap();

        let est = run(&argv(&["estimate", &a_hist, &b_hist])).unwrap();
        assert!(est.contains("selectivity"), "{est}");

        let exact = run(&argv(&["exact-join", &a_csv, &b_csv])).unwrap();
        assert!(exact.contains("pairs"), "{exact}");
        let exact_sweep =
            run(&argv(&["exact-join", &a_csv, &b_csv, "--backend", "sweep"])).unwrap();
        let pairs_of = |s: &str| {
            s.lines()
                .find_map(|l| l.strip_prefix("pairs "))
                .unwrap()
                .to_string()
        };
        assert_eq!(pairs_of(&exact), pairs_of(&exact_sweep));
    }

    #[test]
    fn window_count_command() {
        let csv = tmp("wc.csv");
        run(&argv(&[
            "generate", "sura", "--scale", "0.01", "--out", &csv,
        ]))
        .unwrap();
        let hist = tmp("wc.hist");
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "5",
            "--out",
            &hist,
        ]))
        .unwrap();
        let out = run(&argv(&["window-count", &hist, "--window", "0,0,0.5,0.5"])).unwrap();
        assert!(out.contains("estimated objects"), "{out}");
    }

    #[test]
    fn scheme_mismatch_is_an_error() {
        let csv = tmp("mix.csv");
        run(&argv(&[
            "generate", "sura", "--scale", "0.005", "--out", &csv,
        ]))
        .unwrap();
        let gh = tmp("mix_gh.hist");
        let ph = tmp("mix_ph.hist");
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "3",
            "--out",
            &gh,
        ]))
        .unwrap();
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "3",
            "--scheme",
            "ph",
            "--out",
            &ph,
        ]))
        .unwrap();
        let err = run(&argv(&["estimate", &gh, &ph])).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("common scheme"), "{}", err.message);
    }

    #[test]
    fn bad_arguments_are_usage_errors() {
        assert_eq!(
            run(&argv(&["generate", "nope", "--out", "/tmp/x"]))
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(run(&argv(&["generate", "ts"])).unwrap_err().code, 2);
        assert_eq!(
            run(&argv(&["build-histogram", "x.csv", "--out", "y"]))
                .unwrap_err()
                .code,
            2,
            "missing --level"
        );
        assert_eq!(
            run(&argv(&["window-count", "x", "--window", "1,2,3"]))
                .unwrap_err()
                .code,
            2,
            "malformed window"
        );
        assert_eq!(
            run(&argv(&["stats", "/nonexistent/x.csv"]))
                .unwrap_err()
                .code,
            1
        );
    }

    #[test]
    fn parse_rect_accepts_whitespace() {
        let r = parse_rect("0.1, 0.2, 0.5, 0.6").unwrap();
        assert_eq!(r, Rect::new(0.1, 0.2, 0.5, 0.6));
    }
}

#[cfg(test)]
mod format_tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("sjsel_format_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn binary_dataset_pipeline() {
        let bin = tmp("ds.bin");
        run(&argv(&[
            "generate", "sura", "--scale", "0.005", "--out", &bin,
        ]))
        .unwrap();
        let stats = run(&argv(&["stats", &bin])).unwrap();
        assert!(stats.contains("count          500"), "{stats}");
        // Binary file feeds histogram building and exact joins too.
        let hist = tmp("ds.hist");
        run(&argv(&[
            "build-histogram",
            &bin,
            "--level",
            "4",
            "--out",
            &hist,
        ]))
        .unwrap();
        let out = run(&argv(&["exact-join", &bin, &bin])).unwrap();
        assert!(out.contains("pairs"), "{out}");
    }

    #[test]
    fn sparse_and_dense_gh_files_estimate_identically() {
        let csv = tmp("sp.csv");
        run(&argv(&[
            "generate", "scrc", "--scale", "0.005", "--out", &csv,
        ]))
        .unwrap();
        let dense = tmp("sp_dense.hist");
        let sparse = tmp("sp_sparse.hist");
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "5",
            "--out",
            &dense,
        ]))
        .unwrap();
        let out = run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "5",
            "--sparse",
            "--out",
            &sparse,
        ]))
        .unwrap();
        assert!(out.contains("sparse"), "{out}");
        let e1 = run(&argv(&["estimate", &dense, &dense])).unwrap();
        let e2 = run(&argv(&["estimate", &sparse, &dense])).unwrap();
        let e3 = run(&argv(&["estimate", &sparse, &sparse])).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(e1, e3);
        // Sparse file on clustered data should be smaller than dense.
        let ds = std::fs::metadata(&dense).unwrap().len();
        let sp = std::fs::metadata(&sparse).unwrap().len();
        assert!(sp < ds, "sparse {sp} !< dense {ds}");
        // window-count accepts sparse files.
        let wc = run(&argv(&[
            "window-count",
            &sparse,
            "--window",
            "0.3,0.6,0.5,0.8",
        ]))
        .unwrap();
        assert!(wc.contains("estimated objects"), "{wc}");
    }

    #[test]
    fn sparse_rejected_for_other_schemes() {
        let csv = tmp("ph.csv");
        run(&argv(&[
            "generate", "sura", "--scale", "0.002", "--out", &csv,
        ]))
        .unwrap();
        let err = run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "3",
            "--scheme",
            "ph",
            "--sparse",
            "--out",
            &tmp("ph.hist"),
        ]))
        .unwrap_err();
        assert_eq!(err.code, 2);
    }
}
