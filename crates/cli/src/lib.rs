//! Implementation of the `sjsel` command-line tool.
//!
//! Subcommands:
//!
//! * `generate <preset> [--scale F] --out FILE.csv` — materialize one of
//!   the paper's datasets (ts, tcb, cas, car, sp, spg, scrc, sura).
//! * `stats FILE.csv` — cardinality, coverage, average extents.
//! * `build-histogram FILE.csv --level L --out FILE.hist
//!   [--kind ph|gh-basic|gh|euler] [--shards N] [--extent x0,y0,x1,y1]` —
//!   build and persist a histogram file of any family (`--scheme` is an
//!   alias for `--kind`); with `--shards N` the input is split into N
//!   rectangle ranges built independently and merged, byte-identical to
//!   the direct build.
//! * `merge-histogram A.hist B.hist [...] --out FILE.hist` — merge
//!   histogram files of the same kind and grid into one.
//! * `estimate A.hist B.hist` — estimate the join selectivity from two
//!   histogram files (kinds must match; grids must be compatible).
//! * `exact-join A.csv B.csv [--backend rtree|sweep]` — run the exact
//!   filter-step join.
//! * `window-count FILE.hist --window x0,y0,x1,y1` — estimate how many
//!   objects intersect a window (GH files only).
//!
//! The logic lives in this library crate so it is unit-testable; the
//! binary (`src/main.rs`) is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sj_core::{
    build_histogram_parallel, build_histogram_sharded, load_histogram, presets, Dataset,
    EulerHistogram, Extent, GhBasicHistogram, GhHistogram, Grid, HistogramKind, JoinBaseline,
    Parallelism, PhHistogram, RTreeConfig, Rect, SpatialHistogram,
};
use std::fmt::Write as _;
use std::path::Path;

/// A CLI failure: message for stderr plus an exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 2,
        }
    }

    fn runtime(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 1,
        }
    }
}

/// Runs the CLI on pre-split arguments (excluding `argv[0]`) and returns
/// the stdout payload.
///
/// # Errors
/// Returns a [`CliError`] with a usage (2) or runtime (1) exit code.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::usage(USAGE.to_string()));
    };
    match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "stats" => cmd_stats(rest),
        "build-histogram" => cmd_build_histogram(rest),
        "merge-histogram" => cmd_merge_histogram(rest),
        "estimate" => cmd_estimate(rest),
        "exact-join" => cmd_exact_join(rest),
        "window-count" => cmd_window_count(rest),
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => Err(CliError::usage(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
sjsel — spatial join selectivity toolkit

USAGE:
  sjsel generate <ts|tcb|cas|car|sp|spg|scrc|sura> [--scale F] --out FILE.{csv|bin}
  sjsel stats FILE.csv
  sjsel build-histogram FILE.csv --level L --out FILE.hist
        [--kind ph|gh-basic|gh|euler] [--shards N] [--sparse]
        [--extent x0,y0,x1,y1] [--threads N]
  sjsel merge-histogram A.hist B.hist [MORE.hist ...] --out FILE.hist
  sjsel estimate A.hist B.hist
  sjsel exact-join A.csv B.csv [--backend rtree|sweep] [--threads N]
  sjsel window-count FILE.hist --window x0,y0,x1,y1

--threads defaults to the machine's available parallelism; results are
identical at every thread count.";

/// Pulls the value following a `--flag`, removing both from `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, CliError> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(CliError::usage(format!("missing value for {flag}")));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

/// Parses `--threads N` (default: available parallelism).
fn take_threads(args: &mut Vec<String>) -> Result<Parallelism, CliError> {
    match take_flag(args, "--threads")? {
        Some(s) => {
            let n: usize = s
                .parse()
                .map_err(|e| CliError::usage(format!("bad --threads: {e}")))?;
            Ok(Parallelism::with_threads(n))
        }
        None => Ok(Parallelism::default()),
    }
}

fn parse_rect(spec: &str) -> Result<Rect, CliError> {
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.len() != 4 {
        return Err(CliError::usage(format!(
            "expected x0,y0,x1,y1 — got {spec:?}"
        )));
    }
    let mut vals = [0f64; 4];
    for (v, p) in vals.iter_mut().zip(&parts) {
        *v = p
            .trim()
            .parse()
            .map_err(|e| CliError::usage(format!("bad coordinate {p:?}: {e}")))?;
    }
    Ok(Rect::new(vals[0], vals[1], vals[2], vals[3]))
}

fn load_dataset(path: &str) -> Result<Dataset, CliError> {
    let p = Path::new(path);
    let result = if p.extension().is_some_and(|e| e == "bin") {
        Dataset::load_bin(p)
    } else {
        Dataset::load_csv(p)
    };
    result.map_err(|e| CliError::runtime(format!("failed to load {path}: {e}")))
}

fn cmd_generate(args: &[String]) -> Result<String, CliError> {
    let mut args = args.to_vec();
    let scale: f64 = take_flag(&mut args, "--scale")?.map_or(Ok(1.0), |s| {
        s.parse()
            .map_err(|e| CliError::usage(format!("bad --scale: {e}")))
    })?;
    let out = take_flag(&mut args, "--out")?
        .ok_or_else(|| CliError::usage("generate requires --out FILE.csv"))?;
    let [preset] = args.as_slice() else {
        return Err(CliError::usage("generate takes exactly one preset name"));
    };
    let dataset = match preset.as_str() {
        "ts" => presets::ts(scale),
        "tcb" => presets::tcb(scale),
        "cas" => presets::cas(scale),
        "car" => presets::car(scale),
        "sp" => presets::sp(scale),
        "spg" => presets::spg(scale),
        "scrc" => presets::scrc(scale),
        "sura" => presets::sura(scale),
        other => return Err(CliError::usage(format!("unknown preset {other:?}"))),
    };
    let out_path = Path::new(&out);
    if out_path.extension().is_some_and(|e| e == "bin") {
        dataset.save_bin(out_path)
    } else {
        dataset.save_csv(out_path)
    }
    .map_err(|e| CliError::runtime(format!("failed to write {out}: {e}")))?;
    Ok(format!(
        "wrote {} rects ({}) to {out}",
        dataset.len(),
        dataset.name
    ))
}

fn cmd_stats(args: &[String]) -> Result<String, CliError> {
    let [path] = args else {
        return Err(CliError::usage("stats takes exactly one CSV path"));
    };
    let ds = load_dataset(path)?;
    let s = ds.stats();
    let mut out = String::new();
    let _ = writeln!(out, "dataset        {}", ds.name);
    let _ = writeln!(out, "count          {}", s.count);
    let _ = writeln!(out, "coverage       {:.6}", s.coverage);
    let _ = writeln!(out, "avg width      {:.6}", s.avg_width);
    let _ = writeln!(out, "avg height     {:.6}", s.avg_height);
    let _ = write!(out, "degenerate     {:.1}%", s.degenerate_fraction * 100.0);
    Ok(out)
}

/// Human-facing label for a histogram family.
fn kind_label(kind: HistogramKind) -> &'static str {
    match kind {
        HistogramKind::Ph => "PH",
        HistogramKind::GhBasic => "GH-basic",
        HistogramKind::Gh => "GH",
        HistogramKind::Euler => "Euler",
    }
}

fn cmd_build_histogram(args: &[String]) -> Result<String, CliError> {
    let mut args = args.to_vec();
    let level: u32 = take_flag(&mut args, "--level")?
        .ok_or_else(|| CliError::usage("build-histogram requires --level"))?
        .parse()
        .map_err(|e| CliError::usage(format!("bad --level: {e}")))?;
    let out = take_flag(&mut args, "--out")?
        .ok_or_else(|| CliError::usage("build-histogram requires --out"))?;
    // --kind is the canonical flag; --scheme is kept as an alias.
    let kind_name = match (
        take_flag(&mut args, "--kind")?,
        take_flag(&mut args, "--scheme")?,
    ) {
        (Some(k), _) => k,
        (None, Some(s)) => s,
        (None, None) => "gh".to_string(),
    };
    let kind: HistogramKind = kind_name.parse().map_err(|_| {
        CliError::usage(format!(
            "unknown kind {kind_name:?} (expected ph, gh-basic, gh or euler)"
        ))
    })?;
    let shards: usize = take_flag(&mut args, "--shards")?.map_or(Ok(0), |s| {
        s.parse()
            .map_err(|e| CliError::usage(format!("bad --shards: {e}")))
    })?;
    let par = take_threads(&mut args)?;
    let sparse = args.iter().any(|a| a == "--sparse");
    args.retain(|a| a != "--sparse");
    let extent = match take_flag(&mut args, "--extent")? {
        Some(spec) => Extent::new(parse_rect(&spec)?),
        None => Extent::unit(),
    };
    let [path] = args.as_slice() else {
        return Err(CliError::usage(
            "build-histogram takes exactly one CSV path",
        ));
    };
    if sparse && kind != HistogramKind::Gh {
        return Err(CliError::usage("--sparse is only supported for --kind gh"));
    }
    let ds = load_dataset(path)?;
    let grid = Grid::new(level, extent).map_err(|e| CliError::usage(format!("bad grid: {e}")))?;
    // Shard-and-merge and direct builds are byte-identical, so --shards
    // is purely a demonstration/testing knob for the merge path.
    let hist = if shards > 1 {
        let chunk = ds.rects.len().div_ceil(shards).max(1);
        let pieces: Vec<&[Rect]> = ds.rects.chunks(chunk).collect();
        build_histogram_sharded(kind, grid, &pieces)
    } else {
        build_histogram_parallel(kind, grid, &ds.rects, par.threads())
    };
    let (bytes, label) = if sparse {
        let gh = hist
            .as_any()
            .downcast_ref::<GhHistogram>()
            .expect("kind checked above");
        (gh.to_sparse_bytes(), "GH (sparse)".to_string())
    } else {
        (hist.persist(), kind_label(kind).to_string())
    };
    std::fs::write(&out, &bytes)
        .map_err(|e| CliError::runtime(format!("failed to write {out}: {e}")))?;
    Ok(format!(
        "built {label} histogram (level {level}, {} bytes) from {} rects -> {out}",
        bytes.len(),
        ds.len()
    ))
}

/// Decodes a histogram file: the versioned envelope of any kind, or one
/// of the legacy bare formats (dense/sparse GH, GH-basic, PH, Euler),
/// distinguished by their magic numbers.
fn decode_histogram(bytes: &[u8]) -> Result<Box<dyn SpatialHistogram>, CliError> {
    if let Ok(h) = load_histogram(bytes) {
        return Ok(h);
    }
    if let Ok(h) = GhHistogram::from_bytes(bytes).or_else(|_| GhHistogram::from_sparse_bytes(bytes))
    {
        return Ok(Box::new(h));
    }
    if let Ok(h) = GhBasicHistogram::from_bytes(bytes) {
        return Ok(Box::new(h));
    }
    if let Ok(h) = PhHistogram::from_bytes(bytes) {
        return Ok(Box::new(h));
    }
    if let Ok(h) = EulerHistogram::from_bytes(bytes) {
        return Ok(Box::new(h));
    }
    Err(CliError::runtime(
        "could not decode histogram file with any common scheme (gh, gh-basic, ph, euler)"
            .to_string(),
    ))
}

fn cmd_estimate(args: &[String]) -> Result<String, CliError> {
    let [a_path, b_path] = args else {
        return Err(CliError::usage(
            "estimate takes exactly two histogram paths",
        ));
    };
    let read = |p: &String| {
        std::fs::read(p).map_err(|e| CliError::runtime(format!("failed to read {p}: {e}")))
    };
    let (a, b) = (
        decode_histogram(&read(a_path)?)?,
        decode_histogram(&read(b_path)?)?,
    );
    let est = a
        .estimate_join(b.as_ref())
        .map_err(|e| CliError::runtime(format!("estimation failed: {e}")))?;

    Ok(format!(
        "selectivity {:.6e}\nestimated pairs {:.0}",
        est.selectivity, est.pairs
    ))
}

fn cmd_merge_histogram(args: &[String]) -> Result<String, CliError> {
    let mut args = args.to_vec();
    let out = take_flag(&mut args, "--out")?
        .ok_or_else(|| CliError::usage("merge-histogram requires --out"))?;
    if args.len() < 2 {
        return Err(CliError::usage(
            "merge-histogram takes at least two histogram paths",
        ));
    }
    let mut acc: Option<Box<dyn SpatialHistogram>> = None;
    for path in &args {
        let bytes = std::fs::read(path)
            .map_err(|e| CliError::runtime(format!("failed to read {path}: {e}")))?;
        let h = decode_histogram(&bytes)?;
        match acc.as_mut() {
            None => acc = Some(h),
            Some(a) => a
                .merge(h.as_ref())
                .map_err(|e| CliError::runtime(format!("cannot merge {path}: {e}")))?,
        }
    }
    let acc = acc.expect("checked at least two inputs above");
    let bytes = acc.persist();
    std::fs::write(&out, &bytes)
        .map_err(|e| CliError::runtime(format!("failed to write {out}: {e}")))?;
    Ok(format!(
        "merged {} {} histograms ({} objects, {} bytes) -> {out}",
        args.len(),
        kind_label(acc.kind()),
        acc.dataset_len(),
        bytes.len()
    ))
}

fn cmd_exact_join(args: &[String]) -> Result<String, CliError> {
    let mut args = args.to_vec();
    let backend = take_flag(&mut args, "--backend")?.unwrap_or_else(|| "rtree".to_string());
    let par = take_threads(&mut args)?;
    let [a_path, b_path] = args.as_slice() else {
        return Err(CliError::usage("exact-join takes exactly two CSV paths"));
    };
    let (a, b) = (load_dataset(a_path)?, load_dataset(b_path)?);
    let baseline = match backend.as_str() {
        "rtree" => JoinBaseline::compute_with_parallelism(&a, &b, RTreeConfig::default(), par),
        "sweep" => JoinBaseline::compute_with_backend_parallelism(
            &a,
            &b,
            sj_core::ExactBackend::PlaneSweep,
            par,
        ),
        other => return Err(CliError::usage(format!("unknown backend {other:?}"))),
    };
    Ok(format!(
        "pairs {}\nselectivity {:.6e}\njoin time {:?}",
        baseline.pairs, baseline.selectivity, baseline.join_time
    ))
}

fn cmd_window_count(args: &[String]) -> Result<String, CliError> {
    let mut args = args.to_vec();
    let window = take_flag(&mut args, "--window")?
        .ok_or_else(|| CliError::usage("window-count requires --window x0,y0,x1,y1"))?;
    let window = parse_rect(&window)?;
    let [path] = args.as_slice() else {
        return Err(CliError::usage(
            "window-count takes exactly one histogram path",
        ));
    };
    let bytes = std::fs::read(path)
        .map_err(|e| CliError::runtime(format!("failed to read {path}: {e}")))?;
    let h = decode_histogram(&bytes)?;
    let gh = h.as_any().downcast_ref::<GhHistogram>().ok_or_else(|| {
        CliError::runtime(format!(
            "not a GH histogram file (found kind {})",
            kind_label(h.kind())
        ))
    })?;
    Ok(format!(
        "estimated objects intersecting window: {:.0}",
        gh.estimate_window_count(&window)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("sjsel_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&argv(&["--help"])).unwrap().contains("USAGE"));
        let err = run(&argv(&["frobnicate"])).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("unknown command"));
        assert_eq!(run(&[]).unwrap_err().code, 2);
    }

    #[test]
    fn generate_stats_roundtrip() {
        let csv = tmp("scrc_small.csv");
        let out = run(&argv(&[
            "generate", "scrc", "--scale", "0.001", "--out", &csv,
        ]))
        .unwrap();
        assert!(out.contains("100 rects"), "{out}");
        let stats = run(&argv(&["stats", &csv])).unwrap();
        assert!(stats.contains("count          100"), "{stats}");
    }

    #[test]
    fn full_pipeline_generate_build_estimate() {
        let a_csv = tmp("pipe_a.csv");
        let b_csv = tmp("pipe_b.csv");
        run(&argv(&[
            "generate", "scrc", "--scale", "0.01", "--out", &a_csv,
        ]))
        .unwrap();
        run(&argv(&[
            "generate", "sura", "--scale", "0.01", "--out", &b_csv,
        ]))
        .unwrap();

        let a_hist = tmp("pipe_a.hist");
        let b_hist = tmp("pipe_b.hist");
        run(&argv(&[
            "build-histogram",
            &a_csv,
            "--level",
            "5",
            "--out",
            &a_hist,
        ]))
        .unwrap();
        run(&argv(&[
            "build-histogram",
            &b_csv,
            "--level",
            "5",
            "--out",
            &b_hist,
        ]))
        .unwrap();

        let est = run(&argv(&["estimate", &a_hist, &b_hist])).unwrap();
        assert!(est.contains("selectivity"), "{est}");

        let exact = run(&argv(&["exact-join", &a_csv, &b_csv])).unwrap();
        assert!(exact.contains("pairs"), "{exact}");
        let exact_sweep =
            run(&argv(&["exact-join", &a_csv, &b_csv, "--backend", "sweep"])).unwrap();
        let pairs_of = |s: &str| {
            s.lines()
                .find_map(|l| l.strip_prefix("pairs "))
                .unwrap()
                .to_string()
        };
        assert_eq!(pairs_of(&exact), pairs_of(&exact_sweep));
    }

    #[test]
    fn window_count_command() {
        let csv = tmp("wc.csv");
        run(&argv(&[
            "generate", "sura", "--scale", "0.01", "--out", &csv,
        ]))
        .unwrap();
        let hist = tmp("wc.hist");
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "5",
            "--out",
            &hist,
        ]))
        .unwrap();
        let out = run(&argv(&["window-count", &hist, "--window", "0,0,0.5,0.5"])).unwrap();
        assert!(out.contains("estimated objects"), "{out}");
    }

    #[test]
    fn scheme_mismatch_is_an_error() {
        let csv = tmp("mix.csv");
        run(&argv(&[
            "generate", "sura", "--scale", "0.005", "--out", &csv,
        ]))
        .unwrap();
        let gh = tmp("mix_gh.hist");
        let ph = tmp("mix_ph.hist");
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "3",
            "--out",
            &gh,
        ]))
        .unwrap();
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "3",
            "--scheme",
            "ph",
            "--out",
            &ph,
        ]))
        .unwrap();
        let err = run(&argv(&["estimate", &gh, &ph])).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("common scheme"), "{}", err.message);
    }

    #[test]
    fn bad_arguments_are_usage_errors() {
        assert_eq!(
            run(&argv(&["generate", "nope", "--out", "/tmp/x"]))
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(run(&argv(&["generate", "ts"])).unwrap_err().code, 2);
        assert_eq!(
            run(&argv(&["build-histogram", "x.csv", "--out", "y"]))
                .unwrap_err()
                .code,
            2,
            "missing --level"
        );
        assert_eq!(
            run(&argv(&["window-count", "x", "--window", "1,2,3"]))
                .unwrap_err()
                .code,
            2,
            "malformed window"
        );
        assert_eq!(
            run(&argv(&["stats", "/nonexistent/x.csv"]))
                .unwrap_err()
                .code,
            1
        );
    }

    #[test]
    fn parse_rect_accepts_whitespace() {
        let r = parse_rect("0.1, 0.2, 0.5, 0.6").unwrap();
        assert_eq!(r, Rect::new(0.1, 0.2, 0.5, 0.6));
    }

    #[test]
    fn every_kind_builds_and_estimates() {
        let csv = tmp("kinds.csv");
        run(&argv(&[
            "generate", "scrc", "--scale", "0.005", "--out", &csv,
        ]))
        .unwrap();
        for kind in ["ph", "gh-basic", "gh", "euler"] {
            let hist = tmp(&format!("kinds_{kind}.hist"));
            let out = run(&argv(&[
                "build-histogram",
                &csv,
                "--level",
                "4",
                "--kind",
                kind,
                "--out",
                &hist,
            ]))
            .unwrap();
            assert!(out.contains("built"), "{out}");
            let est = run(&argv(&["estimate", &hist, &hist])).unwrap();
            assert!(est.contains("selectivity"), "{kind}: {est}");
        }
        let err = run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "4",
            "--kind",
            "voronoi",
            "--out",
            &tmp("nope.hist"),
        ]))
        .unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn sharded_build_writes_identical_file() {
        let csv = tmp("shards.csv");
        run(&argv(&[
            "generate", "sura", "--scale", "0.01", "--out", &csv,
        ]))
        .unwrap();
        for kind in ["ph", "gh-basic", "gh", "euler"] {
            let direct = tmp(&format!("shards_{kind}_direct.hist"));
            let merged = tmp(&format!("shards_{kind}_merged.hist"));
            run(&argv(&[
                "build-histogram",
                &csv,
                "--level",
                "4",
                "--kind",
                kind,
                "--out",
                &direct,
            ]))
            .unwrap();
            run(&argv(&[
                "build-histogram",
                &csv,
                "--level",
                "4",
                "--kind",
                kind,
                "--shards",
                "5",
                "--out",
                &merged,
            ]))
            .unwrap();
            assert_eq!(
                std::fs::read(&direct).unwrap(),
                std::fs::read(&merged).unwrap(),
                "{kind}: --shards must produce a byte-identical file"
            );
        }
    }

    #[test]
    fn merge_histogram_command() {
        let csv = tmp("mh.csv");
        run(&argv(&[
            "generate", "scrc", "--scale", "0.005", "--out", &csv,
        ]))
        .unwrap();
        let hist = tmp("mh.hist");
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "4",
            "--out",
            &hist,
        ]))
        .unwrap();
        // Merging a histogram with itself doubles the object count.
        let merged = tmp("mh_merged.hist");
        let out = run(&argv(&["merge-histogram", &hist, &hist, "--out", &merged])).unwrap();
        assert!(out.contains("merged 2 GH histograms"), "{out}");
        assert!(out.contains("1000 objects"), "{out}");
        let est = run(&argv(&["estimate", &merged, &hist])).unwrap();
        assert!(est.contains("selectivity"), "{est}");

        // Mixed kinds refuse to merge.
        let ph = tmp("mh_ph.hist");
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "4",
            "--kind",
            "ph",
            "--out",
            &ph,
        ]))
        .unwrap();
        let err = run(&argv(&["merge-histogram", &hist, &ph, "--out", &merged])).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("common scheme"), "{}", err.message);

        // Fewer than two inputs is a usage error.
        assert_eq!(
            run(&argv(&["merge-histogram", &hist, "--out", &merged]))
                .unwrap_err()
                .code,
            2
        );
    }

    #[test]
    fn window_count_rejects_non_gh_kinds() {
        let csv = tmp("wc_euler.csv");
        run(&argv(&[
            "generate", "sura", "--scale", "0.005", "--out", &csv,
        ]))
        .unwrap();
        let hist = tmp("wc_euler.hist");
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "4",
            "--kind",
            "euler",
            "--out",
            &hist,
        ]))
        .unwrap();
        let err = run(&argv(&["window-count", &hist, "--window", "0,0,0.5,0.5"])).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(
            err.message.contains("not a GH histogram"),
            "{}",
            err.message
        );
    }
}

#[cfg(test)]
mod format_tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("sjsel_format_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn binary_dataset_pipeline() {
        let bin = tmp("ds.bin");
        run(&argv(&[
            "generate", "sura", "--scale", "0.005", "--out", &bin,
        ]))
        .unwrap();
        let stats = run(&argv(&["stats", &bin])).unwrap();
        assert!(stats.contains("count          500"), "{stats}");
        // Binary file feeds histogram building and exact joins too.
        let hist = tmp("ds.hist");
        run(&argv(&[
            "build-histogram",
            &bin,
            "--level",
            "4",
            "--out",
            &hist,
        ]))
        .unwrap();
        let out = run(&argv(&["exact-join", &bin, &bin])).unwrap();
        assert!(out.contains("pairs"), "{out}");
    }

    #[test]
    fn sparse_and_dense_gh_files_estimate_identically() {
        let csv = tmp("sp.csv");
        run(&argv(&[
            "generate", "scrc", "--scale", "0.005", "--out", &csv,
        ]))
        .unwrap();
        let dense = tmp("sp_dense.hist");
        let sparse = tmp("sp_sparse.hist");
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "5",
            "--out",
            &dense,
        ]))
        .unwrap();
        let out = run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "5",
            "--sparse",
            "--out",
            &sparse,
        ]))
        .unwrap();
        assert!(out.contains("sparse"), "{out}");
        let e1 = run(&argv(&["estimate", &dense, &dense])).unwrap();
        let e2 = run(&argv(&["estimate", &sparse, &dense])).unwrap();
        let e3 = run(&argv(&["estimate", &sparse, &sparse])).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(e1, e3);
        // Sparse file on clustered data should be smaller than dense.
        let ds = std::fs::metadata(&dense).unwrap().len();
        let sp = std::fs::metadata(&sparse).unwrap().len();
        assert!(sp < ds, "sparse {sp} !< dense {ds}");
        // window-count accepts sparse files.
        let wc = run(&argv(&[
            "window-count",
            &sparse,
            "--window",
            "0.3,0.6,0.5,0.8",
        ]))
        .unwrap();
        assert!(wc.contains("estimated objects"), "{wc}");
    }

    #[test]
    fn sparse_rejected_for_other_schemes() {
        let csv = tmp("ph.csv");
        run(&argv(&[
            "generate", "sura", "--scale", "0.002", "--out", &csv,
        ]))
        .unwrap();
        let err = run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "3",
            "--scheme",
            "ph",
            "--sparse",
            "--out",
            &tmp("ph.hist"),
        ]))
        .unwrap_err();
        assert_eq!(err.code, 2);
    }
}
