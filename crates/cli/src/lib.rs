//! Implementation of the `sjsel` command-line tool.
//!
//! Subcommands:
//!
//! * `generate <preset> [--scale F] --out FILE.csv` — materialize one of
//!   the paper's datasets (ts, tcb, cas, car, sp, spg, scrc, sura).
//! * `stats FILE.csv` — cardinality, coverage, average extents.
//! * `build-histogram FILE.csv --level L --out FILE.hist
//!   [--kind ph|gh-basic|gh|euler] [--shards N] [--extent x0,y0,x1,y1]` —
//!   build and persist a histogram file of any family (`--scheme` is an
//!   alias for `--kind`); with `--shards N` the input is split into N
//!   rectangle ranges built independently and merged, byte-identical to
//!   the direct build.
//! * `merge-histogram A.hist B.hist [...] --out FILE.hist` — merge
//!   histogram files of the same kind and grid into one.
//! * `estimate A.hist B.hist` — estimate the join selectivity from two
//!   histogram files (kinds must match; grids must be compatible).
//! * `catalog-estimate A.csv B.csv [--stats-dir DIR] [--json]` — estimate
//!   through the catalog's graceful-degradation ladder: saved statistics
//!   when usable, otherwise PH rebuild → parametric → sampling, with the
//!   serving tier reported as provenance (JSON `provenance` field under
//!   `--json`) and every degradation surfaced as a stderr warning.
//! * `exact-join A.csv B.csv [--backend rtree|sweep]` — run the exact
//!   filter-step join.
//! * `window-count FILE.hist --window x0,y0,x1,y1` — estimate how many
//!   objects intersect a window (GH files only).
//! * `apply-delta BASE.hist --inserts I.csv --deletes D.csv --out OUT` —
//!   fold a signed insert/delete statistics delta into a histogram file
//!   offline, byte-identical to a full rebuild over the mutated data.
//! * `compact BASE.hist DELTA.hdelta [...] --out OUT` — fold persisted
//!   delta envelopes into a base histogram file.
//! * `serve FILES... [--addr HOST:PORT] [--stats-dir DIR]` — load the
//!   catalog once and answer estimate requests over TCP until a client
//!   sends `shutdown` (the paper's estimates are cheap only once the
//!   statistics are resident; this keeps them resident).
//! * `client --addr HOST:PORT <op> [...]` — query a running daemon;
//!   output is byte-identical to the corresponding cold subcommand and
//!   remote failures reuse the same exit codes.
//!
//! Dataset-reading commands accept `--validate strict|repair|skip`
//! (default `strict`): CSV records with non-finite coordinates, inverted
//! corners or out-of-extent rectangles are rejected with the offending
//! line and field, repaired where well-defined, or dropped — repairs and
//! drops are reported as warnings on stderr.
//!
//! Failures exit with a documented nonzero code (see [`exit_code`]) and a
//! single human-readable stderr line — never a backtrace.
//!
//! The logic lives in this library crate so it is unit-testable; the
//! binary (`src/main.rs`) is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use sj_core::sync::{LockRank, OrderedRwLock};
use sj_core::{
    build_histogram_parallel, build_histogram_sharded, load_delta, load_histogram, presets,
    Dataset, DatasetError, EulerHistogram, Extent, GhBasicHistogram, GhHistogram, Grid,
    HistogramError, HistogramKind, JoinBaseline, Parallelism, PhHistogram, RTreeConfig, Rect,
    SpatialHistogram, ValidationPolicy,
};
use sj_query::{Catalog, CatalogConfig, CompactionPolicy, DegradationPolicy, QueryError};
use sj_server::{CatalogService, Client, ClientError, RemoteOutcome, Server, ServerConfig};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

/// Documented process exit codes. Each failure category maps to one code
/// so scripts can react without parsing stderr text.
pub mod exit_code {
    /// Generic runtime failure not covered by a more specific code.
    pub const RUNTIME: i32 = 1;
    /// Bad command line: unknown command/flag/value, missing argument.
    pub const USAGE: i32 = 2;
    /// The filesystem failed: a file could not be read or written.
    pub const IO: i32 = 3;
    /// A histogram/statistics file is corrupt (bad envelope, failed
    /// checksum, malformed payload, stale cardinality).
    pub const CORRUPT: i32 = 4;
    /// Histogram kind or grid mismatch between the supplied files.
    pub const MISMATCH: i32 = 5;
    /// A dataset file is invalid: malformed record, failed validation
    /// under `--validate strict`, or no surviving records.
    pub const INVALID_DATA: i32 = 6;
    /// Every tier of the estimation ladder was disabled or failed.
    pub const EXHAUSTED: i32 = 7;
    /// The statistics daemon refused the connection at its admission
    /// ceiling (wire status `overloaded`).
    pub const OVERLOADED: i32 = 8;
}

/// A CLI failure: message for stderr plus an exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code (see [`exit_code`]).
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: exit_code::USAGE,
        }
    }

    fn runtime(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: exit_code::RUNTIME,
        }
    }

    fn io(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: exit_code::IO,
        }
    }

    /// Maps a histogram-layer error onto the exit-code taxonomy.
    fn from_histogram(context: &str, e: &HistogramError) -> Self {
        let code = match e {
            HistogramError::Corrupt { .. } => exit_code::CORRUPT,
            HistogramError::KindMismatch { .. } | HistogramError::GridMismatch { .. } => {
                exit_code::MISMATCH
            }
            HistogramError::LevelTooLarge(_) => exit_code::USAGE,
            HistogramError::DeltaOutOfRange { .. } => exit_code::INVALID_DATA,
            // Future (non_exhaustive) histogram errors: a conservative
            // runtime failure until a dedicated exit code exists.
            _ => exit_code::RUNTIME,
        };
        Self {
            message: format!("{context}: {e}"),
            code,
        }
    }

    /// Maps a query-layer error onto the exit-code taxonomy.
    fn from_query(context: &str, e: &QueryError) -> Self {
        match e {
            QueryError::Histogram(h) => Self::from_histogram(context, h),
            QueryError::EstimatorsExhausted(_) => Self {
                message: format!("{context}: {e}"),
                code: exit_code::EXHAUSTED,
            },
            QueryError::StatisticsUnavailable { .. } => Self {
                message: format!("{context}: {e}"),
                code: exit_code::CORRUPT,
            },
            QueryError::TooFewTables(_) => Self::usage(format!("{context}: {e}")),
            QueryError::DeleteNotFound { .. } => Self {
                message: format!("{context}: {e}"),
                code: exit_code::INVALID_DATA,
            },
            QueryError::Io(_) => Self::io(format!("{context}: {e}")),
            QueryError::UnknownTable(_)
            | QueryError::DuplicateTable(_)
            | QueryError::ResultTooLarge { .. } => Self::runtime(format!("{context}: {e}")),
            // Future (non_exhaustive) query errors default to runtime.
            _ => Self::runtime(format!("{context}: {e}")),
        }
    }

    /// Maps a dataset-ingestion error onto the exit-code taxonomy.
    fn from_dataset(path: &str, e: &DatasetError) -> Self {
        match e {
            DatasetError::Io(_) => Self::io(format!("failed to load {path}: {e}")),
            DatasetError::Parse { .. } | DatasetError::Invalid { .. } | DatasetError::Empty => {
                Self {
                    message: format!("{path}: {e}"),
                    code: exit_code::INVALID_DATA,
                }
            }
            // Future (non_exhaustive) ingestion errors count as bad data.
            _ => Self {
                message: format!("{path}: {e}"),
                code: exit_code::INVALID_DATA,
            },
        }
    }
}

/// A successful command's output: the stdout payload plus any warnings
/// the binary prints to stderr (validation repairs/drops, degraded
/// estimates) so that piping stdout stays clean.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOutput {
    /// Payload for stdout.
    pub stdout: String,
    /// Warnings for stderr, in emission order.
    pub warnings: Vec<String>,
}

impl CliOutput {
    fn new(stdout: impl Into<String>) -> Self {
        Self {
            stdout: stdout.into(),
            warnings: Vec::new(),
        }
    }

    fn with_warnings(stdout: impl Into<String>, warnings: Vec<String>) -> Self {
        Self {
            stdout: stdout.into(),
            warnings,
        }
    }
}

impl std::ops::Deref for CliOutput {
    type Target = String;

    fn deref(&self) -> &String {
        &self.stdout
    }
}

impl std::fmt::Display for CliOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.stdout)
    }
}

/// Runs the CLI on pre-split arguments (excluding `argv[0]`) and returns
/// the stdout payload plus warnings.
///
/// # Errors
/// Returns a [`CliError`] carrying one of the documented [`exit_code`]s.
pub fn run(args: &[String]) -> Result<CliOutput, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::usage(USAGE.to_string()));
    };
    match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "stats" => cmd_stats(rest),
        "build-histogram" => cmd_build_histogram(rest),
        "merge-histogram" => cmd_merge_histogram(rest),
        "estimate" => cmd_estimate(rest),
        "catalog-estimate" => cmd_catalog_estimate(rest),
        "exact-join" => cmd_exact_join(rest),
        "window-count" => cmd_window_count(rest),
        "apply-delta" => cmd_apply_delta(rest),
        "compact" => cmd_compact(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "--help" | "-h" | "help" => Ok(CliOutput::new(USAGE)),
        other => Err(CliError::usage(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
sjsel — spatial join selectivity toolkit

USAGE:
  sjsel generate <ts|tcb|cas|car|sp|spg|scrc|sura> [--scale F] --out FILE.{csv|bin}
  sjsel stats FILE.csv [--validate strict|repair|skip]
  sjsel build-histogram FILE.csv --level L --out FILE.hist
        [--kind ph|gh-basic|gh|euler] [--shards N] [--sparse]
        [--extent x0,y0,x1,y1] [--threads N] [--validate P]
  sjsel merge-histogram A.hist B.hist [MORE.hist ...] --out FILE.hist
  sjsel estimate A.hist B.hist
  sjsel catalog-estimate A.csv B.csv [--kind K] [--level L]
        [--stats-dir DIR] [--json] [--validate P]
        [--no-ph-rebuild] [--no-parametric] [--no-sampling]
        [--sample-percent F] [--ph-level L]
  sjsel exact-join A.csv B.csv [--backend rtree|sweep] [--threads N] [--validate P]
  sjsel window-count FILE.hist --window x0,y0,x1,y1
  sjsel apply-delta BASE.hist --out FILE.hist [--inserts FILE.csv]
        [--deletes FILE.csv] [--save-delta FILE.hdelta] [--threads N]
        [--validate P]
  sjsel compact BASE.hist DELTA.hdelta [MORE.hdelta ...] --out FILE.hist
  sjsel serve FILE.csv [MORE.csv ...] [--addr HOST:PORT] [--kind K] [--level L]
        [--stats-dir DIR] [--validate P] [--ready-file PATH]
        [--max-connections N] [--io-timeout-ms MS]
  sjsel client --addr HOST:PORT [--timeout-ms MS] <ping|tables|shutdown>
  sjsel client --addr HOST:PORT estimate TABLE_A TABLE_B
  sjsel client --addr HOST:PORT catalog-estimate TABLE_A TABLE_B [--json]
  sjsel client --addr HOST:PORT window-count TABLE --window x0,y0,x1,y1
  sjsel client --addr HOST:PORT explain TABLE_A TABLE_B [MORE ...]
  sjsel client --addr HOST:PORT batch-estimate A,B [C,D ...]
  sjsel client --addr HOST:PORT insert-batch TABLE FILE.csv [--validate P]
  sjsel client --addr HOST:PORT delete-batch TABLE FILE.csv [--validate P]
  sjsel client --addr HOST:PORT compact TABLE

serve registers each dataset under its file stem as the table name and
answers until a client sends shutdown; with --addr ending in :0 the OS
picks the port and --ready-file receives the bound address. client
output is byte-identical to the matching cold subcommand; remote
failures exit with the cold path's exit code.

apply-delta builds the signed statistics delta of an insert/delete
batch and folds it into a histogram file — byte-identical to a full
rebuild over the mutated dataset; compact folds persisted .hdelta
files into a base envelope the same way. client insert-batch /
delete-batch / compact apply the same operations to a live daemon's
tables without a restart; with --stats-dir the daemon write-ahead-logs
every batch and replays the log on the next start.

--threads defaults to the machine's available parallelism (must be >= 1);
results are identical at every thread count.

serve admits at most --max-connections concurrent clients (default 64;
excess connections get a typed `overloaded` error) and, with
--io-timeout-ms, disconnects a client that stalls a read or write past
the deadline. client --timeout-ms bounds each request round-trip the
same way. All three must be >= 1.

EXIT CODES:
  0 success       1 runtime failure   2 usage error      3 I/O failure
  4 corrupt file  5 kind/grid mismatch  6 invalid dataset  7 estimators exhausted
  8 server overloaded";

/// Pulls the value following a `--flag`, removing both from `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, CliError> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(CliError::usage(format!("missing value for {flag}")));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

/// Removes a boolean `--flag`, reporting whether it was present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    let present = args.iter().any(|a| a == flag);
    args.retain(|a| a != flag);
    present
}

/// Parses `--threads N` (default: available parallelism). Zero threads is
/// a usage error, not a panic or a silent clamp.
fn take_threads(args: &mut Vec<String>) -> Result<Parallelism, CliError> {
    match take_flag(args, "--threads")? {
        Some(s) => {
            let n: usize = s
                .parse()
                .map_err(|e| CliError::usage(format!("bad --threads: {e}")))?;
            Parallelism::try_new(n).map_err(|e| CliError::usage(format!("bad --threads: {e}")))
        }
        None => Ok(Parallelism::default()),
    }
}

/// Parses a positive-integer flag. Zero is a usage error, not a silent
/// clamp — the `--threads 0` precedent.
fn take_positive(args: &mut Vec<String>, flag: &str) -> Result<Option<u64>, CliError> {
    match take_flag(args, flag)? {
        Some(s) => {
            let n: u64 = s
                .parse()
                .map_err(|e| CliError::usage(format!("bad {flag}: {e}")))?;
            if n == 0 {
                return Err(CliError::usage(format!("bad {flag}: must be >= 1")));
            }
            Ok(Some(n))
        }
        None => Ok(None),
    }
}

/// Parses `--validate strict|repair|skip` (default: strict).
fn take_validation(args: &mut Vec<String>) -> Result<ValidationPolicy, CliError> {
    match take_flag(args, "--validate")? {
        Some(s) => ValidationPolicy::parse(&s).map_err(CliError::usage),
        None => Ok(ValidationPolicy::Strict),
    }
}

fn parse_rect(spec: &str) -> Result<Rect, CliError> {
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.len() != 4 {
        return Err(CliError::usage(format!(
            "expected x0,y0,x1,y1 — got {spec:?}"
        )));
    }
    let mut vals = [0f64; 4];
    for (v, p) in vals.iter_mut().zip(&parts) {
        *v = p
            .trim()
            .parse()
            .map_err(|e| CliError::usage(format!("bad coordinate {p:?}: {e}")))?;
    }
    Ok(Rect::new(vals[0], vals[1], vals[2], vals[3]))
}

/// Loads a dataset file under `policy`. Binary files carry their own
/// strict internal validation; CSV files go through the policy-driven
/// validated reader, pushing a warning when records were repaired or
/// dropped.
fn load_dataset(
    path: &str,
    policy: ValidationPolicy,
    warnings: &mut Vec<String>,
) -> Result<Dataset, CliError> {
    let p = Path::new(path);
    if p.extension().is_some_and(|e| e == "bin") {
        return Dataset::load_bin(p)
            .map_err(|e| CliError::io(format!("failed to load {path}: {e}")));
    }
    let (ds, report) = Dataset::load_csv_validated(p, policy, None)
        .map_err(|e| CliError::from_dataset(path, &e))?;
    if report.repaired > 0 || report.skipped > 0 {
        warnings.push(format!(
            "{path}: {} record(s) repaired, {} dropped of {} checked (--validate {})",
            report.repaired,
            report.skipped,
            report.checked,
            policy.name()
        ));
    }
    Ok(ds)
}

fn cmd_generate(args: &[String]) -> Result<CliOutput, CliError> {
    let mut args = args.to_vec();
    let scale: f64 = take_flag(&mut args, "--scale")?.map_or(Ok(1.0), |s| {
        s.parse()
            .map_err(|e| CliError::usage(format!("bad --scale: {e}")))
    })?;
    let out = take_flag(&mut args, "--out")?
        .ok_or_else(|| CliError::usage("generate requires --out FILE.csv"))?;
    let [preset] = args.as_slice() else {
        return Err(CliError::usage("generate takes exactly one preset name"));
    };
    let dataset = match preset.as_str() {
        "ts" => presets::ts(scale),
        "tcb" => presets::tcb(scale),
        "cas" => presets::cas(scale),
        "car" => presets::car(scale),
        "sp" => presets::sp(scale),
        "spg" => presets::spg(scale),
        "scrc" => presets::scrc(scale),
        "sura" => presets::sura(scale),
        other => return Err(CliError::usage(format!("unknown preset {other:?}"))),
    };
    let out_path = Path::new(&out);
    if out_path.extension().is_some_and(|e| e == "bin") {
        dataset.save_bin(out_path)
    } else {
        dataset.save_csv(out_path)
    }
    .map_err(|e| CliError::io(format!("failed to write {out}: {e}")))?;
    Ok(CliOutput::new(format!(
        "wrote {} rects ({}) to {out}",
        dataset.len(),
        dataset.name
    )))
}

fn cmd_stats(args: &[String]) -> Result<CliOutput, CliError> {
    let mut args = args.to_vec();
    let policy = take_validation(&mut args)?;
    let [path] = args.as_slice() else {
        return Err(CliError::usage("stats takes exactly one CSV path"));
    };
    let mut warnings = Vec::new();
    let ds = load_dataset(path, policy, &mut warnings)?;
    let s = ds.stats();
    let mut out = String::new();
    let _ = writeln!(out, "dataset        {}", ds.name);
    let _ = writeln!(out, "count          {}", s.count);
    let _ = writeln!(out, "coverage       {:.6}", s.coverage);
    let _ = writeln!(out, "avg width      {:.6}", s.avg_width);
    let _ = writeln!(out, "avg height     {:.6}", s.avg_height);
    let _ = write!(out, "degenerate     {:.1}%", s.degenerate_fraction * 100.0);
    Ok(CliOutput::with_warnings(out, warnings))
}

/// Human-facing label for a histogram family.
fn kind_label(kind: HistogramKind) -> &'static str {
    match kind {
        HistogramKind::Ph => "PH",
        HistogramKind::GhBasic => "GH-basic",
        HistogramKind::Gh => "GH",
        HistogramKind::Euler => "Euler",
    }
}

fn cmd_build_histogram(args: &[String]) -> Result<CliOutput, CliError> {
    let mut args = args.to_vec();
    let level: u32 = take_flag(&mut args, "--level")?
        .ok_or_else(|| CliError::usage("build-histogram requires --level"))?
        .parse()
        .map_err(|e| CliError::usage(format!("bad --level: {e}")))?;
    let out = take_flag(&mut args, "--out")?
        .ok_or_else(|| CliError::usage("build-histogram requires --out"))?;
    // --kind is the canonical flag; --scheme is kept as an alias.
    let kind_name = match (
        take_flag(&mut args, "--kind")?,
        take_flag(&mut args, "--scheme")?,
    ) {
        (Some(k), _) => k,
        (None, Some(s)) => s,
        (None, None) => "gh".to_string(),
    };
    let kind: HistogramKind = kind_name.parse().map_err(|_| {
        CliError::usage(format!(
            "unknown kind {kind_name:?} (expected ph, gh-basic, gh or euler)"
        ))
    })?;
    let shards: usize = take_flag(&mut args, "--shards")?.map_or(Ok(0), |s| {
        s.parse()
            .map_err(|e| CliError::usage(format!("bad --shards: {e}")))
    })?;
    let par = take_threads(&mut args)?;
    let policy = take_validation(&mut args)?;
    let sparse = take_switch(&mut args, "--sparse");
    let extent = match take_flag(&mut args, "--extent")? {
        Some(spec) => Extent::new(parse_rect(&spec)?),
        None => Extent::unit(),
    };
    let [path] = args.as_slice() else {
        return Err(CliError::usage(
            "build-histogram takes exactly one CSV path",
        ));
    };
    if sparse && kind != HistogramKind::Gh {
        return Err(CliError::usage("--sparse is only supported for --kind gh"));
    }
    let mut warnings = Vec::new();
    let ds = load_dataset(path, policy, &mut warnings)?;
    let grid = Grid::new(level, extent).map_err(|e| CliError::usage(format!("bad grid: {e}")))?;
    // Shard-and-merge and direct builds are byte-identical, so --shards
    // is purely a demonstration/testing knob for the merge path.
    let hist = if shards > 1 {
        let chunk = ds.rects.len().div_ceil(shards).max(1);
        let pieces: Vec<&[Rect]> = ds.rects.chunks(chunk).collect();
        build_histogram_sharded(kind, grid, &pieces)
    } else {
        build_histogram_parallel(kind, grid, &ds.rects, par.threads())
    };
    let (bytes, label) = if sparse {
        let gh = hist
            .as_any()
            .downcast_ref::<GhHistogram>()
            .ok_or_else(|| CliError::runtime("internal: --sparse on a non-GH histogram"))?;
        (gh.to_sparse_bytes(), "GH (sparse)".to_string())
    } else {
        (hist.persist(), kind_label(kind).to_string())
    };
    std::fs::write(&out, &bytes)
        .map_err(|e| CliError::io(format!("failed to write {out}: {e}")))?;
    Ok(CliOutput::with_warnings(
        format!(
            "built {label} histogram (level {level}, {} bytes) from {} rects -> {out}",
            bytes.len(),
            ds.len()
        ),
        warnings,
    ))
}

/// Little-endian bytes of the versioned envelope magic ("SJSH").
const ENVELOPE_MAGIC_LE: [u8; 4] = 0x534a_5348u32.to_le_bytes();

/// Decodes a histogram file: the versioned envelope of any kind, or one
/// of the legacy bare formats (dense/sparse GH, GH-basic, PH, Euler),
/// distinguished by their magic numbers. A file that *is* an envelope but
/// fails to decode keeps its typed error (and exit code) instead of
/// falling through to the legacy guessing.
fn decode_histogram(path: &str, bytes: &[u8]) -> Result<Box<dyn SpatialHistogram>, CliError> {
    match load_histogram(bytes) {
        Ok(h) => return Ok(h),
        Err(e) if bytes.get(..4) == Some(ENVELOPE_MAGIC_LE.as_slice()) => {
            return Err(CliError::from_histogram(path, &e));
        }
        Err(_) => {}
    }
    if let Ok(h) = GhHistogram::from_bytes(bytes).or_else(|_| GhHistogram::from_sparse_bytes(bytes))
    {
        return Ok(Box::new(h));
    }
    if let Ok(h) = GhBasicHistogram::from_bytes(bytes) {
        return Ok(Box::new(h));
    }
    if let Ok(h) = PhHistogram::from_bytes(bytes) {
        return Ok(Box::new(h));
    }
    if let Ok(h) = EulerHistogram::from_bytes(bytes) {
        return Ok(Box::new(h));
    }
    Err(CliError {
        message: format!(
            "{path}: could not decode histogram file with any common scheme \
             (gh, gh-basic, ph, euler)"
        ),
        code: exit_code::CORRUPT,
    })
}

fn cmd_estimate(args: &[String]) -> Result<CliOutput, CliError> {
    let [a_path, b_path] = args else {
        return Err(CliError::usage(
            "estimate takes exactly two histogram paths",
        ));
    };
    let read =
        |p: &String| std::fs::read(p).map_err(|e| CliError::io(format!("failed to read {p}: {e}")));
    let (a, b) = (
        decode_histogram(a_path, &read(a_path)?)?,
        decode_histogram(b_path, &read(b_path)?)?,
    );
    let est = a
        .estimate_join(b.as_ref())
        .map_err(|e| CliError::from_histogram("estimation failed", &e))?;

    Ok(CliOutput::new(format!(
        "selectivity {:.6e}\nestimated pairs {:.0}",
        est.selectivity, est.pairs
    )))
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a ladder outcome as the documented JSON document with its
/// `provenance` field. Takes the wire-flattened [`RemoteOutcome`] so the
/// cold `catalog-estimate` path and the warm `client catalog-estimate`
/// path are byte-identical by construction — both render through here.
fn outcome_json(outcome: &RemoteOutcome) -> String {
    let skipped = outcome
        .skipped
        .iter()
        .map(|(tier, reason)| {
            format!(
                "{{\"tier\":\"{tier}\",\"reason\":\"{}\"}}",
                json_escape(reason)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"pairs\":{},\"selectivity\":{},\"provenance\":{{\"tier\":\"{}\",\
         \"degraded\":{},\"skipped\":[{}]}}}}",
        outcome.pairs, outcome.selectivity, outcome.tier_name, outcome.degraded, skipped
    )
}

/// Renders a ladder outcome as the documented text report (shared by the
/// cold and warm `catalog-estimate` paths).
fn outcome_text(outcome: &RemoteOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "selectivity {:.6e}", outcome.selectivity);
    let _ = writeln!(out, "estimated pairs {:.0}", outcome.pairs);
    let _ = write!(out, "tier {}", outcome.tier_display);
    for (tier, reason) in &outcome.skipped {
        let _ = write!(out, "\nskipped {tier}: {reason}");
    }
    out
}

/// The stderr warning emitted when a fallback tier served the estimate
/// (shared by the cold and warm `catalog-estimate` paths).
fn outcome_warning(outcome: &RemoteOutcome) -> Option<String> {
    if !outcome.degraded {
        return None;
    }
    let reasons = outcome
        .skipped
        .iter()
        .map(|(tier, reason)| format!("{tier}: {reason}"))
        .collect::<Vec<_>>()
        .join("; ");
    Some(format!(
        "estimate degraded to the {} tier ({reasons})",
        outcome.tier_display
    ))
}

fn cmd_catalog_estimate(args: &[String]) -> Result<CliOutput, CliError> {
    let mut args = args.to_vec();
    let level: u32 = take_flag(&mut args, "--level")?.map_or(Ok(6), |s| {
        s.parse()
            .map_err(|e| CliError::usage(format!("bad --level: {e}")))
    })?;
    let kind: HistogramKind = match take_flag(&mut args, "--kind")? {
        Some(name) => name.parse().map_err(|_| {
            CliError::usage(format!(
                "unknown kind {name:?} (expected ph, gh-basic, gh or euler)"
            ))
        })?,
        None => HistogramKind::Gh,
    };
    let stats_dir = take_flag(&mut args, "--stats-dir")?;
    let json = take_switch(&mut args, "--json");
    let validate = take_validation(&mut args)?;

    let mut policy = DegradationPolicy::default();
    if take_switch(&mut args, "--no-ph-rebuild") {
        policy.allow_ph_rebuild = false;
    }
    if take_switch(&mut args, "--no-parametric") {
        policy.allow_parametric = false;
    }
    if take_switch(&mut args, "--no-sampling") {
        policy.sampling_percent = None;
    }
    if let Some(p) = take_flag(&mut args, "--sample-percent")? {
        let p: f64 = p
            .parse()
            .map_err(|e| CliError::usage(format!("bad --sample-percent: {e}")))?;
        policy.sampling_percent = Some(p);
    }
    if let Some(l) = take_flag(&mut args, "--ph-level")? {
        policy.ph_level = l
            .parse()
            .map_err(|e| CliError::usage(format!("bad --ph-level: {e}")))?;
    }

    let [a_path, b_path] = args.as_slice() else {
        return Err(CliError::usage(
            "catalog-estimate takes exactly two dataset paths",
        ));
    };

    let mut warnings = Vec::new();
    let mut a = load_dataset(a_path, validate, &mut warnings)?;
    let mut b = load_dataset(b_path, validate, &mut warnings)?;
    // Joining a dataset file against itself is legitimate; keep the
    // catalog names unique.
    a.name = format!("{}#a", a.name);
    b.name = format!("{}#b", b.name);
    let (name_a, name_b) = (a.name.clone(), b.name.clone());

    let mut catalog = Catalog::try_new(CatalogConfig {
        kind,
        grid_level: level,
        ..CatalogConfig::default()
    })
    .map_err(|e| CliError::from_query("bad catalog configuration", &e))?;

    // Register each table: from saved statistics when --stats-dir holds a
    // `<stem>.hist` for it (leniently — unusable statistics degrade the
    // estimate instead of failing), from a fresh build otherwise. A
    // `<stem>.base` compaction snapshot means the daemon has folded
    // mutations into that histogram, so it no longer describes the CSV;
    // this cold path estimates the CSVs as given and builds fresh.
    for (path, ds) in [(a_path, a), (b_path, b)] {
        let table = ds.name.clone();
        let stem = Path::new(path).file_stem().map_or_else(
            || "dataset".to_string(),
            |s| s.to_string_lossy().into_owned(),
        );
        let snapshot = stats_dir
            .as_ref()
            .map(|dir| Path::new(dir).join(format!("{stem}.base")));
        if snapshot.is_some_and(|f| f.exists()) {
            catalog
                .register(ds)
                .map_err(|e| CliError::from_query("registration failed", &e))?;
            continue;
        }
        let stats_file = stats_dir
            .as_ref()
            .map(|dir| Path::new(dir).join(format!("{stem}.hist")));
        match stats_file {
            Some(f) if f.exists() => {
                let bytes = std::fs::read(&f)
                    .map_err(|e| CliError::io(format!("failed to read {}: {e}", f.display())))?;
                let reason = catalog
                    .register_with_statistics_lenient(ds, &bytes)
                    .map_err(|e| CliError::from_query("registration failed", &e))?;
                if let Some(reason) = reason {
                    warnings.push(format!(
                        "statistics {} unusable for table {table:?}: {reason}; \
                         estimation will degrade",
                        f.display()
                    ));
                }
            }
            _ => catalog
                .register(ds)
                .map_err(|e| CliError::from_query("registration failed", &e))?,
        }
    }

    let outcome = catalog
        .estimate_join_pairs_detailed(&name_a, &name_b, &policy)
        .map_err(|e| CliError::from_query("estimation failed", &e))?;
    // Flatten to the wire representation so this output goes through the
    // exact renderers the warm `client catalog-estimate` path uses.
    let outcome = RemoteOutcome::from_outcome(&outcome);

    if let Some(w) = outcome_warning(&outcome) {
        warnings.push(w);
    }
    let stdout = if json {
        outcome_json(&outcome)
    } else {
        outcome_text(&outcome)
    };
    Ok(CliOutput::with_warnings(stdout, warnings))
}

fn cmd_merge_histogram(args: &[String]) -> Result<CliOutput, CliError> {
    let mut args = args.to_vec();
    let out = take_flag(&mut args, "--out")?
        .ok_or_else(|| CliError::usage("merge-histogram requires --out"))?;
    let (first, rest) = match args.as_slice() {
        [first, rest @ ..] if !rest.is_empty() => (first, rest),
        _ => {
            return Err(CliError::usage(
                "merge-histogram takes at least two histogram paths",
            ))
        }
    };
    let read =
        |p: &String| std::fs::read(p).map_err(|e| CliError::io(format!("failed to read {p}: {e}")));
    let mut acc = decode_histogram(first, &read(first)?)?;
    for path in rest {
        let h = decode_histogram(path, &read(path)?)?;
        acc.merge(h.as_ref())
            .map_err(|e| CliError::from_histogram(&format!("cannot merge {path}"), &e))?;
    }
    let bytes = acc.persist();
    std::fs::write(&out, &bytes)
        .map_err(|e| CliError::io(format!("failed to write {out}: {e}")))?;
    Ok(CliOutput::new(format!(
        "merged {} {} histograms ({} objects, {} bytes) -> {out}",
        args.len(),
        kind_label(acc.kind()),
        acc.dataset_len(),
        bytes.len()
    )))
}

fn cmd_exact_join(args: &[String]) -> Result<CliOutput, CliError> {
    let mut args = args.to_vec();
    let backend = take_flag(&mut args, "--backend")?.unwrap_or_else(|| "rtree".to_string());
    let par = take_threads(&mut args)?;
    let policy = take_validation(&mut args)?;
    let [a_path, b_path] = args.as_slice() else {
        return Err(CliError::usage("exact-join takes exactly two CSV paths"));
    };
    let mut warnings = Vec::new();
    let (a, b) = (
        load_dataset(a_path, policy, &mut warnings)?,
        load_dataset(b_path, policy, &mut warnings)?,
    );
    let baseline = match backend.as_str() {
        "rtree" => JoinBaseline::compute_with_parallelism(&a, &b, RTreeConfig::default(), par),
        "sweep" => JoinBaseline::compute_with_backend_parallelism(
            &a,
            &b,
            sj_core::ExactBackend::PlaneSweep,
            par,
        ),
        other => return Err(CliError::usage(format!("unknown backend {other:?}"))),
    };
    Ok(CliOutput::with_warnings(
        format!(
            "pairs {}\nselectivity {:.6e}\njoin time {:?}",
            baseline.pairs, baseline.selectivity, baseline.join_time
        ),
        warnings,
    ))
}

fn cmd_window_count(args: &[String]) -> Result<CliOutput, CliError> {
    let mut args = args.to_vec();
    let window = take_flag(&mut args, "--window")?
        .ok_or_else(|| CliError::usage("window-count requires --window x0,y0,x1,y1"))?;
    let window = parse_rect(&window)?;
    let [path] = args.as_slice() else {
        return Err(CliError::usage(
            "window-count takes exactly one histogram path",
        ));
    };
    let bytes =
        std::fs::read(path).map_err(|e| CliError::io(format!("failed to read {path}: {e}")))?;
    let h = decode_histogram(path, &bytes)?;
    let gh = h
        .as_any()
        .downcast_ref::<GhHistogram>()
        .ok_or_else(|| CliError {
            message: format!(
                "{path}: not a GH histogram file (found kind {})",
                kind_label(h.kind())
            ),
            code: exit_code::MISMATCH,
        })?;
    Ok(CliOutput::new(format!(
        "estimated objects intersecting window: {:.0}",
        gh.estimate_window_count(&window)
    )))
}

/// The table name a dataset path registers under in `serve`: the file
/// stem, matching the `<stem>.hist` convention of `--stats-dir`.
fn table_name_for(path: &str) -> String {
    Path::new(path).file_stem().map_or_else(
        || "dataset".to_string(),
        |s| s.to_string_lossy().into_owned(),
    )
}

fn cmd_apply_delta(args: &[String]) -> Result<CliOutput, CliError> {
    let mut args = args.to_vec();
    let out = take_flag(&mut args, "--out")?
        .ok_or_else(|| CliError::usage("apply-delta requires --out"))?;
    let inserts_path = take_flag(&mut args, "--inserts")?;
    let deletes_path = take_flag(&mut args, "--deletes")?;
    let save_delta = take_flag(&mut args, "--save-delta")?;
    let par = take_threads(&mut args)?;
    let policy = take_validation(&mut args)?;
    let [base_path] = args.as_slice() else {
        return Err(CliError::usage(
            "apply-delta takes exactly one base histogram path",
        ));
    };
    if inserts_path.is_none() && deletes_path.is_none() {
        return Err(CliError::usage(
            "apply-delta requires --inserts and/or --deletes",
        ));
    }
    let mut warnings = Vec::new();
    let bytes = std::fs::read(base_path)
        .map_err(|e| CliError::io(format!("failed to read {base_path}: {e}")))?;
    let mut hist = decode_histogram(base_path, &bytes)?;
    let load_batch = |path: &Option<String>, warnings: &mut Vec<String>| match path {
        Some(p) => Ok(load_dataset(p, policy, warnings)?.rects),
        None => Ok(Vec::new()),
    };
    let inserts = load_batch(&inserts_path, &mut warnings)?;
    let deletes = load_batch(&deletes_path, &mut warnings)?;
    let delta = sj_core::HistogramDelta::build_parallel(
        hist.kind(),
        hist.grid(),
        &inserts,
        &deletes,
        par.threads(),
    );
    hist.apply_delta(&delta)
        .map_err(|e| CliError::from_histogram(base_path, &e))?;
    if let Some(dp) = &save_delta {
        std::fs::write(dp, delta.persist())
            .map_err(|e| CliError::io(format!("failed to write {dp}: {e}")))?;
    }
    let out_bytes = hist.persist();
    std::fs::write(&out, &out_bytes)
        .map_err(|e| CliError::io(format!("failed to write {out}: {e}")))?;
    Ok(CliOutput::with_warnings(
        format!(
            "applied delta (+{} -{} rects) to {} ({} bytes) -> {out}",
            delta.inserts(),
            delta.deletes(),
            kind_label(hist.kind()),
            out_bytes.len()
        ),
        warnings,
    ))
}

fn cmd_compact(args: &[String]) -> Result<CliOutput, CliError> {
    let mut args = args.to_vec();
    let out =
        take_flag(&mut args, "--out")?.ok_or_else(|| CliError::usage("compact requires --out"))?;
    let Some((base_path, delta_paths)) = args.split_first() else {
        return Err(CliError::usage(
            "compact takes a base histogram path and at least one .hdelta path",
        ));
    };
    if delta_paths.is_empty() {
        return Err(CliError::usage("compact takes at least one .hdelta path"));
    }
    let bytes = std::fs::read(base_path)
        .map_err(|e| CliError::io(format!("failed to read {base_path}: {e}")))?;
    let mut hist = decode_histogram(base_path, &bytes)?;
    let mut inserts = 0u64;
    let mut deletes = 0u64;
    for dp in delta_paths {
        let bytes =
            std::fs::read(dp).map_err(|e| CliError::io(format!("failed to read {dp}: {e}")))?;
        let delta = load_delta(&bytes).map_err(|e| CliError::from_histogram(dp, &e))?;
        hist.apply_delta(&delta)
            .map_err(|e| CliError::from_histogram(dp, &e))?;
        inserts += delta.inserts();
        deletes += delta.deletes();
    }
    let out_bytes = hist.persist();
    std::fs::write(&out, &out_bytes)
        .map_err(|e| CliError::io(format!("failed to write {out}: {e}")))?;
    Ok(CliOutput::new(format!(
        "compacted {} delta file(s) (+{inserts} -{deletes} rects) into {} ({} bytes) -> {out}",
        delta_paths.len(),
        kind_label(hist.kind()),
        out_bytes.len()
    )))
}

fn cmd_serve(args: &[String]) -> Result<CliOutput, CliError> {
    let mut args = args.to_vec();
    let addr = take_flag(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let level: u32 = take_flag(&mut args, "--level")?.map_or(Ok(6), |s| {
        s.parse()
            .map_err(|e| CliError::usage(format!("bad --level: {e}")))
    })?;
    let kind: HistogramKind = match take_flag(&mut args, "--kind")? {
        Some(name) => name.parse().map_err(|_| {
            CliError::usage(format!(
                "unknown kind {name:?} (expected ph, gh-basic, gh or euler)"
            ))
        })?,
        None => HistogramKind::Gh,
    };
    let stats_dir = take_flag(&mut args, "--stats-dir")?;
    let validate = take_validation(&mut args)?;
    let ready_file = take_flag(&mut args, "--ready-file")?;
    let mut server_config = ServerConfig::default();
    if let Some(n) = take_positive(&mut args, "--max-connections")? {
        server_config.max_connections = usize::try_from(n)
            .map_err(|_| CliError::usage("bad --max-connections: value too large"))?;
    }
    if let Some(ms) = take_positive(&mut args, "--io-timeout-ms")? {
        server_config.io_timeout = Some(std::time::Duration::from_millis(ms));
    }
    if args.is_empty() {
        return Err(CliError::usage("serve takes at least one dataset path"));
    }

    // Load the catalog ONCE — the entire point of the daemon: every
    // request after this point pays only the estimation arithmetic.
    let mut warnings = Vec::new();
    let mut catalog = Catalog::try_new(CatalogConfig {
        kind,
        grid_level: level,
        ..CatalogConfig::default()
    })
    .map_err(|e| CliError::from_query("bad catalog configuration", &e))?;
    for path in &args {
        let mut ds = load_dataset(path, validate, &mut warnings)?;
        let table = table_name_for(path);
        ds.name.clone_from(&table);
        // A compaction snapshot marks a table whose authoritative state
        // lives in the statistics store (folded mutations mean the CSV
        // and the saved histogram no longer agree): defer statistics and
        // let open_stats_store below install the snapshotted pair.
        let snapshot = stats_dir
            .as_ref()
            .map(|dir| Path::new(dir).join(format!("{table}.base")));
        if snapshot.is_some_and(|f| f.exists()) {
            catalog
                .register_deferred(ds)
                .map_err(|e| CliError::from_query("registration failed", &e))?;
            continue;
        }
        let stats_file = stats_dir
            .as_ref()
            .map(|dir| Path::new(dir).join(format!("{table}.hist")));
        match stats_file {
            Some(f) if f.exists() => {
                let bytes = std::fs::read(&f)
                    .map_err(|e| CliError::io(format!("failed to read {}: {e}", f.display())))?;
                let reason = catalog
                    .register_with_statistics_lenient(ds, &bytes)
                    .map_err(|e| CliError::from_query("registration failed", &e))?;
                if let Some(reason) = reason {
                    warnings.push(format!(
                        "statistics {} unusable for table {table:?}: {reason}; \
                         estimation will degrade",
                        f.display()
                    ));
                }
            }
            _ => catalog
                .register(ds)
                .map_err(|e| CliError::from_query("registration failed", &e))?,
        }
    }

    // With a statistics directory the daemon keeps a per-table
    // write-ahead delta log there: mutations survive a crash and are
    // replayed into the in-memory statistics on the next start.
    if let Some(dir) = &stats_dir {
        let recovery = catalog
            .open_stats_store(Path::new(dir), CompactionPolicy::default())
            .map_err(|e| CliError::from_query("failed to open statistics store", &e))?;
        if recovery.installed > 0 || recovery.replayed > 0 || recovery.torn_tails > 0 {
            warnings.push(format!(
                "recovered statistics from {dir}: {} snapshot(s) installed, \
                 {} WAL record(s) replayed, {} already-folded record(s) skipped, \
                 {} torn tail(s) discarded",
                recovery.installed, recovery.replayed, recovery.skipped, recovery.torn_tails
            ));
        }
    }

    let service = CatalogService::new(
        Arc::new(OrderedRwLock::new(
            LockRank::Catalog,
            "serve.catalog",
            catalog,
        )),
        DegradationPolicy::default(),
    );
    let server = Server::bind_with_config(addr.as_str(), service, server_config)
        .map_err(|e| CliError::io(format!("serve: {e}")))?;
    let local = server
        .local_addr()
        .map_err(|e| CliError::io(format!("serve: {e}")))?;
    // The readiness signal for scripts and tests: written only after the
    // bind succeeded, carrying the OS-assigned port of an `:0` bind.
    if let Some(rf) = &ready_file {
        std::fs::write(rf, format!("{local}\n"))
            .map_err(|e| CliError::io(format!("failed to write {rf}: {e}")))?;
    }
    // Announce on stderr immediately: stdout is returned only after the
    // daemon stops, and piping stdout must stay clean.
    for w in &warnings {
        eprintln!("warning: {w}");
    }
    warnings.clear();
    eprintln!(
        "sj-server listening on {local} ({} table(s)); stop with: sjsel client --addr {local} shutdown",
        args.len()
    );
    server
        .run()
        .map_err(|e| CliError::runtime(format!("serve: {e}")))?;
    Ok(CliOutput::new(format!("server on {local} stopped")))
}

/// Maps a client-layer failure onto the exit-code taxonomy: remote
/// failures carry the status the cold path would have exited with, wire
/// failures use the codec's own status mapping.
fn from_client(e: ClientError) -> CliError {
    match e {
        ClientError::Remote { status, message } => CliError {
            message,
            code: i32::from(status),
        },
        ClientError::Wire(w) => CliError {
            message: w.to_string(),
            code: i32::from(w.status()),
        },
        ClientError::Protocol(why) => CliError::runtime(format!("protocol violation: {why}")),
        // Future (non_exhaustive) client errors default to runtime.
        _ => CliError::runtime(e.to_string()),
    }
}

fn cmd_client(args: &[String]) -> Result<CliOutput, CliError> {
    let mut args = args.to_vec();
    let addr = take_flag(&mut args, "--addr")?
        .ok_or_else(|| CliError::usage("client requires --addr HOST:PORT"))?;
    let json = take_switch(&mut args, "--json");
    let window = take_flag(&mut args, "--window")?;
    let validate = take_validation(&mut args)?;
    let timeout_ms = take_positive(&mut args, "--timeout-ms")?;
    let Some((op, rest)) = args.split_first() else {
        return Err(CliError::usage(
            "client requires an operation (ping, tables, estimate, catalog-estimate, \
             window-count, explain, batch-estimate, insert-batch, delete-batch, \
             compact, shutdown)",
        ));
    };
    // Retry on the fixed backoff schedule: a daemon that is still
    // binding (scripts often start both at once) is reached without a
    // race, while a permanently absent one still fails with the I/O
    // exit code after the bounded schedule runs out.
    let mut client = Client::connect_with_retry(addr.as_str()).map_err(from_client)?;
    if let Some(ms) = timeout_ms {
        client
            .set_io_timeout(Some(std::time::Duration::from_millis(ms)))
            .map_err(from_client)?;
    }
    match (op.as_str(), rest) {
        ("ping", []) => {
            client.ping().map_err(from_client)?;
            Ok(CliOutput::new("pong"))
        }
        ("tables", []) => {
            let names = client.tables().map_err(from_client)?;
            Ok(CliOutput::new(names.join("\n")))
        }
        ("estimate", [a, b]) => {
            let reply = client.estimate(a, b).map_err(from_client)?;
            Ok(CliOutput::new(format!(
                "selectivity {:.6e}\nestimated pairs {:.0}",
                reply.selectivity, reply.pairs
            )))
        }
        ("catalog-estimate", [a, b]) => {
            let outcome = client.catalog_estimate(a, b).map_err(from_client)?;
            let stdout = if json {
                outcome_json(&outcome)
            } else {
                outcome_text(&outcome)
            };
            let warnings = outcome_warning(&outcome).into_iter().collect();
            Ok(CliOutput::with_warnings(stdout, warnings))
        }
        ("window-count", [table]) => {
            let window =
                window.ok_or_else(|| CliError::usage("client window-count requires --window"))?;
            let rect = parse_rect(&window)?;
            let count = client.window_count(table, &rect).map_err(from_client)?;
            Ok(CliOutput::new(format!(
                "estimated objects intersecting window: {count:.0}"
            )))
        }
        ("explain", tables) if tables.len() >= 2 => {
            let text = client.explain(tables).map_err(from_client)?;
            Ok(CliOutput::new(text))
        }
        ("batch-estimate", specs) if !specs.is_empty() => {
            let mut pairs = Vec::with_capacity(specs.len());
            for spec in specs {
                let Some((a, b)) = spec.split_once(',') else {
                    return Err(CliError::usage(format!(
                        "batch-estimate items are TABLE_A,TABLE_B — got {spec:?}"
                    )));
                };
                pairs.push((a.trim().to_string(), b.trim().to_string()));
            }
            let items = client.batch_estimate(&pairs).map_err(from_client)?;
            let mut out = String::new();
            let mut warnings = Vec::new();
            for ((a, b), item) in pairs.iter().zip(&items) {
                match item {
                    Ok(reply) => {
                        let _ = writeln!(
                            out,
                            "{a} {b} selectivity {:.6e} pairs {:.0}",
                            reply.selectivity, reply.pairs
                        );
                    }
                    Err(failure) => {
                        let _ = writeln!(out, "{a} {b} error {}", failure.message);
                        warnings.push(format!("batch item {a},{b} failed: {}", failure.message));
                    }
                }
            }
            out.truncate(out.trim_end_matches('\n').len());
            Ok(CliOutput::with_warnings(out, warnings))
        }
        ("insert-batch" | "delete-batch", [table, file]) => {
            let mut warnings = Vec::new();
            let ds = load_dataset(file, validate, &mut warnings)?;
            // The retrying path: the batch is stamped once and resent
            // verbatim after an ambiguous connection failure, and the
            // server's dedup ring makes the retry exactly-once.
            let reply = if op == "insert-batch" {
                client.insert_batch_with_retry(table, &ds.rects)
            } else {
                client.delete_batch_with_retry(table, &ds.rects)
            }
            .map_err(from_client)?;
            Ok(CliOutput::with_warnings(
                format!(
                    "{op} applied {} rect(s) to {table}; {} pending delta tier(s){}{}",
                    reply.applied,
                    reply.pending_tiers,
                    if reply.compacted {
                        " (auto-compacted)"
                    } else {
                        ""
                    },
                    if reply.deduplicated {
                        " (already applied; retry deduplicated)"
                    } else {
                        ""
                    }
                ),
                warnings,
            ))
        }
        ("compact", [table]) => {
            let reply = client.compact(table).map_err(from_client)?;
            Ok(CliOutput::new(format!(
                "compacted {table}: {} tier(s) folded{}",
                reply.tiers_folded,
                if reply.persisted {
                    "; statistics file rewritten"
                } else {
                    ""
                }
            )))
        }
        ("shutdown", []) => {
            client.shutdown_server().map_err(from_client)?;
            Ok(CliOutput::new("server shut down"))
        }
        (other, _) => Err(CliError::usage(format!(
            "unknown or malformed client operation {other:?} (see sjsel --help)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("sjsel_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&argv(&["--help"])).unwrap().contains("USAGE"));
        let err = run(&argv(&["frobnicate"])).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE);
        assert!(err.message.contains("unknown command"));
        assert_eq!(run(&[]).unwrap_err().code, exit_code::USAGE);
    }

    #[test]
    fn generate_stats_roundtrip() {
        let csv = tmp("scrc_small.csv");
        let out = run(&argv(&[
            "generate", "scrc", "--scale", "0.001", "--out", &csv,
        ]))
        .unwrap();
        assert!(out.contains("100 rects"), "{out}");
        let stats = run(&argv(&["stats", &csv])).unwrap();
        assert!(stats.contains("count          100"), "{stats}");
        assert!(stats.warnings.is_empty(), "{:?}", stats.warnings);
    }

    #[test]
    fn full_pipeline_generate_build_estimate() {
        let a_csv = tmp("pipe_a.csv");
        let b_csv = tmp("pipe_b.csv");
        run(&argv(&[
            "generate", "scrc", "--scale", "0.01", "--out", &a_csv,
        ]))
        .unwrap();
        run(&argv(&[
            "generate", "sura", "--scale", "0.01", "--out", &b_csv,
        ]))
        .unwrap();

        let a_hist = tmp("pipe_a.hist");
        let b_hist = tmp("pipe_b.hist");
        run(&argv(&[
            "build-histogram",
            &a_csv,
            "--level",
            "5",
            "--out",
            &a_hist,
        ]))
        .unwrap();
        run(&argv(&[
            "build-histogram",
            &b_csv,
            "--level",
            "5",
            "--out",
            &b_hist,
        ]))
        .unwrap();

        let est = run(&argv(&["estimate", &a_hist, &b_hist])).unwrap();
        assert!(est.contains("selectivity"), "{est}");

        let exact = run(&argv(&["exact-join", &a_csv, &b_csv])).unwrap();
        assert!(exact.contains("pairs"), "{exact}");
        let exact_sweep =
            run(&argv(&["exact-join", &a_csv, &b_csv, "--backend", "sweep"])).unwrap();
        let pairs_of = |s: &str| {
            s.lines()
                .find_map(|l| l.strip_prefix("pairs "))
                .unwrap()
                .to_string()
        };
        assert_eq!(pairs_of(&exact), pairs_of(&exact_sweep));
    }

    #[test]
    fn window_count_command() {
        let csv = tmp("wc.csv");
        run(&argv(&[
            "generate", "sura", "--scale", "0.01", "--out", &csv,
        ]))
        .unwrap();
        let hist = tmp("wc.hist");
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "5",
            "--out",
            &hist,
        ]))
        .unwrap();
        let out = run(&argv(&["window-count", &hist, "--window", "0,0,0.5,0.5"])).unwrap();
        assert!(out.contains("estimated objects"), "{out}");
    }

    #[test]
    fn scheme_mismatch_is_an_error() {
        let csv = tmp("mix.csv");
        run(&argv(&[
            "generate", "sura", "--scale", "0.005", "--out", &csv,
        ]))
        .unwrap();
        let gh = tmp("mix_gh.hist");
        let ph = tmp("mix_ph.hist");
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "3",
            "--out",
            &gh,
        ]))
        .unwrap();
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "3",
            "--scheme",
            "ph",
            "--out",
            &ph,
        ]))
        .unwrap();
        let err = run(&argv(&["estimate", &gh, &ph])).unwrap_err();
        assert_eq!(err.code, exit_code::MISMATCH);
        assert!(err.message.contains("common scheme"), "{}", err.message);
    }

    #[test]
    fn bad_arguments_are_usage_errors() {
        assert_eq!(
            run(&argv(&["generate", "nope", "--out", "/tmp/x"]))
                .unwrap_err()
                .code,
            exit_code::USAGE
        );
        assert_eq!(
            run(&argv(&["generate", "ts"])).unwrap_err().code,
            exit_code::USAGE
        );
        assert_eq!(
            run(&argv(&["build-histogram", "x.csv", "--out", "y"]))
                .unwrap_err()
                .code,
            exit_code::USAGE,
            "missing --level"
        );
        assert_eq!(
            run(&argv(&["window-count", "x", "--window", "1,2,3"]))
                .unwrap_err()
                .code,
            exit_code::USAGE,
            "malformed window"
        );
        assert_eq!(
            run(&argv(&["stats", "/nonexistent/x.csv"]))
                .unwrap_err()
                .code,
            exit_code::IO
        );
    }

    #[test]
    fn threads_zero_is_a_clean_usage_error() {
        let csv = tmp("t0.csv");
        run(&argv(&[
            "generate", "sura", "--scale", "0.002", "--out", &csv,
        ]))
        .unwrap();
        for cmd in [
            argv(&[
                "build-histogram",
                &csv,
                "--level",
                "3",
                "--threads",
                "0",
                "--out",
                &tmp("t0.hist"),
            ]),
            argv(&["exact-join", &csv, &csv, "--threads", "0"]),
        ] {
            let err = run(&cmd).unwrap_err();
            assert_eq!(err.code, exit_code::USAGE, "{}", err.message);
            assert!(err.message.contains("--threads"), "{}", err.message);
        }
    }

    #[test]
    fn admission_flags_reject_zero_and_garbage() {
        // All three parse before any socket or file is touched, so a
        // bad value is a clean usage error even with no daemon running.
        for (cmd, flag) in [
            (
                argv(&["serve", "absent.csv", "--max-connections", "0"]),
                "--max-connections",
            ),
            (
                argv(&["serve", "absent.csv", "--io-timeout-ms", "0"]),
                "--io-timeout-ms",
            ),
            (
                argv(&["serve", "absent.csv", "--max-connections", "lots"]),
                "--max-connections",
            ),
            (
                argv(&[
                    "client",
                    "--addr",
                    "127.0.0.1:1",
                    "--timeout-ms",
                    "0",
                    "ping",
                ]),
                "--timeout-ms",
            ),
        ] {
            let err = run(&cmd).unwrap_err();
            assert_eq!(err.code, exit_code::USAGE, "{}", err.message);
            assert!(err.message.contains(flag), "{}", err.message);
        }
    }

    #[test]
    fn corrupt_histogram_files_exit_with_corrupt_code() {
        let csv = tmp("cor.csv");
        run(&argv(&[
            "generate", "scrc", "--scale", "0.005", "--out", &csv,
        ]))
        .unwrap();
        let hist = tmp("cor.hist");
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "4",
            "--out",
            &hist,
        ]))
        .unwrap();

        // Bit-flip the payload: the CRC32 must catch it, exit code 4.
        let mut bytes = std::fs::read(&hist).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        let flipped = tmp("cor_flipped.hist");
        std::fs::write(&flipped, &bytes).unwrap();
        let err = run(&argv(&["estimate", &flipped, &hist])).unwrap_err();
        assert_eq!(err.code, exit_code::CORRUPT, "{}", err.message);
        assert!(err.message.contains("corrupt"), "{}", err.message);

        // Truncation breaks the length frame, exit code 4.
        let full = std::fs::read(&hist).unwrap();
        let truncated = tmp("cor_trunc.hist");
        std::fs::write(&truncated, &full[..full.len() / 2]).unwrap();
        let err = run(&argv(&["window-count", &truncated, "--window", "0,0,1,1"])).unwrap_err();
        assert_eq!(err.code, exit_code::CORRUPT, "{}", err.message);

        // Unreadable files are I/O errors, not corruption.
        let err = run(&argv(&["estimate", "/nonexistent/a.hist", &hist])).unwrap_err();
        assert_eq!(err.code, exit_code::IO);
    }

    #[test]
    fn invalid_datasets_exit_with_data_code_and_location() {
        let bad = tmp("bad_field.csv");
        std::fs::write(&bad, "0,0,1,1\n0.1,0.2,oops,0.4\n").unwrap();
        let err = run(&argv(&["stats", &bad])).unwrap_err();
        assert_eq!(err.code, exit_code::INVALID_DATA);
        assert!(
            err.message.contains("line 2") && err.message.contains("field xhi"),
            "{}",
            err.message
        );

        let inverted = tmp("bad_inverted.csv");
        std::fs::write(&inverted, "0,0,1,1\n0.9,0.0,0.1,1.0\n").unwrap();
        let err = run(&argv(&["stats", &inverted])).unwrap_err();
        assert_eq!(err.code, exit_code::INVALID_DATA);
        assert!(err.message.contains("line 2"), "{}", err.message);

        let empty = tmp("empty.csv");
        std::fs::write(&empty, "\n\n").unwrap();
        let err = run(&argv(&["stats", &empty])).unwrap_err();
        assert_eq!(err.code, exit_code::INVALID_DATA);
        assert!(err.message.contains("empty"), "{}", err.message);
    }

    #[test]
    fn validation_policies_repair_and_skip_with_warnings() {
        let path = tmp("val_mixed.csv");
        std::fs::write(&path, "0,0,1,1\n0.9,0.0,0.1,1.0\nnan,0,1,1\n").unwrap();

        let out = run(&argv(&["stats", &path, "--validate", "repair"])).unwrap();
        assert!(out.contains("count          2"), "{out}");
        assert_eq!(out.warnings.len(), 1, "{:?}", out.warnings);
        assert!(
            out.warnings[0].contains("1 record(s) repaired, 1 dropped"),
            "{:?}",
            out.warnings
        );

        let out = run(&argv(&["stats", &path, "--validate", "skip"])).unwrap();
        assert!(out.contains("count          1"), "{out}");
        assert!(out.warnings[0].contains("2 dropped"), "{:?}", out.warnings);

        let err = run(&argv(&["stats", &path, "--validate", "lenient"])).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE);
    }

    #[test]
    fn catalog_estimate_healthy_serves_primary() {
        let a_csv = tmp("ce_a.csv");
        let b_csv = tmp("ce_b.csv");
        run(&argv(&[
            "generate", "scrc", "--scale", "0.01", "--out", &a_csv,
        ]))
        .unwrap();
        run(&argv(&[
            "generate", "sura", "--scale", "0.01", "--out", &b_csv,
        ]))
        .unwrap();

        let out = run(&argv(&["catalog-estimate", &a_csv, &b_csv, "--level", "4"])).unwrap();
        assert!(out.contains("tier primary (gh)"), "{out}");
        assert!(out.warnings.is_empty(), "{:?}", out.warnings);

        let json = run(&argv(&[
            "catalog-estimate",
            &a_csv,
            &b_csv,
            "--level",
            "4",
            "--json",
        ]))
        .unwrap();
        assert!(json.contains("\"provenance\""), "{json}");
        assert!(json.contains("\"tier\":\"primary\""), "{json}");
        assert!(json.contains("\"degraded\":false"), "{json}");
        assert!(json.contains("\"skipped\":[]"), "{json}");

        // Self-join of one file works (unique table names).
        let selfjoin = run(&argv(&["catalog-estimate", &a_csv, &a_csv, "--level", "4"])).unwrap();
        assert!(selfjoin.contains("tier primary"), "{selfjoin}");
    }

    #[test]
    fn catalog_estimate_degrades_on_corrupt_statistics() {
        let a_csv = tmp("ced_a.csv");
        let b_csv = tmp("ced_b.csv");
        run(&argv(&[
            "generate", "scrc", "--scale", "0.01", "--out", &a_csv,
        ]))
        .unwrap();
        run(&argv(&[
            "generate", "sura", "--scale", "0.01", "--out", &b_csv,
        ]))
        .unwrap();

        // A statistics directory whose `ced_a.hist` is bit-flipped.
        let stats_dir = tmp("ced_stats");
        std::fs::create_dir_all(&stats_dir).unwrap();
        let a_hist = format!("{stats_dir}/ced_a.hist");
        let b_hist = format!("{stats_dir}/ced_b.hist");
        run(&argv(&[
            "build-histogram",
            &a_csv,
            "--level",
            "4",
            "--out",
            &a_hist,
        ]))
        .unwrap();
        run(&argv(&[
            "build-histogram",
            &b_csv,
            "--level",
            "4",
            "--out",
            &b_hist,
        ]))
        .unwrap();
        let mut bytes = std::fs::read(&a_hist).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&a_hist, &bytes).unwrap();

        // Default ladder: degrade to the PH rebuild with a warning.
        let out = run(&argv(&[
            "catalog-estimate",
            &a_csv,
            &b_csv,
            "--level",
            "4",
            "--stats-dir",
            &stats_dir,
        ]))
        .unwrap();
        assert!(out.contains("tier ph-rebuild"), "{out}");
        assert!(
            out.warnings.iter().any(|w| w.contains("corrupt")),
            "{:?}",
            out.warnings
        );
        assert!(
            out.warnings.iter().any(|w| w.contains("degraded")),
            "{:?}",
            out.warnings
        );

        // With the rebuild disabled the parametric tier answers; the JSON
        // provenance names both the tier and the corruption reason.
        let json = run(&argv(&[
            "catalog-estimate",
            &a_csv,
            &b_csv,
            "--level",
            "4",
            "--stats-dir",
            &stats_dir,
            "--no-ph-rebuild",
            "--json",
        ]))
        .unwrap();
        assert!(json.contains("\"tier\":\"parametric\""), "{json}");
        assert!(json.contains("\"degraded\":true"), "{json}");
        assert!(json.contains("corrupt"), "{json}");

        // Everything disabled: the ladder is exhausted, exit code 7.
        let err = run(&argv(&[
            "catalog-estimate",
            &a_csv,
            &b_csv,
            "--level",
            "4",
            "--stats-dir",
            &stats_dir,
            "--no-ph-rebuild",
            "--no-parametric",
            "--no-sampling",
        ]))
        .unwrap_err();
        assert_eq!(err.code, exit_code::EXHAUSTED, "{}", err.message);
        assert!(err.message.contains("corrupt"), "{}", err.message);
    }

    #[test]
    fn wire_status_codes_mirror_exit_codes() {
        use sj_server::status;
        // The daemon's wire status taxonomy IS the exit-code taxonomy:
        // a remote failure exits the client with the cold path's code.
        assert_eq!(i32::from(status::OK), 0);
        assert_eq!(i32::from(status::RUNTIME), exit_code::RUNTIME);
        assert_eq!(i32::from(status::USAGE), exit_code::USAGE);
        assert_eq!(i32::from(status::IO), exit_code::IO);
        assert_eq!(i32::from(status::CORRUPT), exit_code::CORRUPT);
        assert_eq!(i32::from(status::MISMATCH), exit_code::MISMATCH);
        assert_eq!(i32::from(status::INVALID_DATA), exit_code::INVALID_DATA);
        assert_eq!(i32::from(status::EXHAUSTED), exit_code::EXHAUSTED);
    }

    #[test]
    fn serve_and_client_round_trip() {
        let a_csv = tmp("srv_a.csv");
        let b_csv = tmp("srv_b.csv");
        run(&argv(&[
            "generate", "scrc", "--scale", "0.01", "--out", &a_csv,
        ]))
        .unwrap();
        run(&argv(&[
            "generate", "sura", "--scale", "0.01", "--out", &b_csv,
        ]))
        .unwrap();

        let ready = tmp("srv_ready.txt");
        drop(std::fs::remove_file(&ready));
        let serve_args = argv(&[
            "serve",
            &a_csv,
            &b_csv,
            "--level",
            "4",
            "--addr",
            "127.0.0.1:0",
            "--ready-file",
            &ready,
        ]);
        let daemon = std::thread::spawn(move || run(&serve_args));

        // Wait for the readiness file to learn the OS-assigned port.
        let addr = {
            let mut tries = 0;
            loop {
                match std::fs::read_to_string(&ready) {
                    Ok(s) if s.ends_with('\n') => break s.trim().to_string(),
                    _ if tries > 500 => panic!("server never became ready"),
                    _ => {
                        tries += 1;
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                }
            }
        };

        let out = run(&argv(&["client", "--addr", &addr, "ping"])).unwrap();
        assert_eq!(out.stdout, "pong");

        let tables = run(&argv(&["client", "--addr", &addr, "tables"])).unwrap();
        assert!(tables.contains("srv_a"), "{tables}");
        assert!(tables.contains("srv_b"), "{tables}");

        let est = run(&argv(&[
            "client", "--addr", &addr, "estimate", "srv_a", "srv_b",
        ]))
        .unwrap();
        assert!(est.contains("selectivity"), "{est}");

        // Warm catalog-estimate matches the cold text shape.
        let warm = run(&argv(&[
            "client",
            "--addr",
            &addr,
            "catalog-estimate",
            "srv_a",
            "srv_b",
        ]))
        .unwrap();
        assert!(warm.contains("tier primary (gh)"), "{warm}");
        assert!(warm.warnings.is_empty(), "{:?}", warm.warnings);

        // Remote failures carry the cold exit code (unknown table -> 1).
        let err = run(&argv(&[
            "client", "--addr", &addr, "estimate", "nope", "srv_b",
        ]))
        .unwrap_err();
        assert_eq!(err.code, exit_code::RUNTIME, "{}", err.message);
        assert!(err.message.contains("nope"), "{}", err.message);

        // Batched estimates: per-item status wrapping.
        let batch = run(&argv(&[
            "client",
            "--addr",
            &addr,
            "batch-estimate",
            "srv_a,srv_b",
            "srv_a,missing",
        ]))
        .unwrap();
        assert!(batch.contains("srv_a srv_b selectivity"), "{batch}");
        assert!(batch.contains("srv_a missing error"), "{batch}");
        assert_eq!(batch.warnings.len(), 1, "{:?}", batch.warnings);

        let stop = run(&argv(&["client", "--addr", &addr, "shutdown"])).unwrap();
        assert_eq!(stop.stdout, "server shut down");
        let served = daemon.join().unwrap().unwrap();
        assert!(served.contains("stopped"), "{served}");
    }

    #[test]
    fn apply_delta_and_compact_match_full_rebuild() {
        let base_csv = tmp("delta_base.csv");
        let extra_csv = tmp("delta_extra.csv");
        run(&argv(&[
            "generate", "scrc", "--scale", "0.01", "--out", &base_csv,
        ]))
        .unwrap();
        run(&argv(&[
            "generate", "sura", "--scale", "0.005", "--out", &extra_csv,
        ]))
        .unwrap();
        // The ground truth: a histogram built from base ∪ extra in one go
        // (the CSV format is headerless rows, so concatenation unions).
        let union_csv = tmp("delta_union.csv");
        let both = format!(
            "{}{}",
            std::fs::read_to_string(&base_csv).unwrap(),
            std::fs::read_to_string(&extra_csv).unwrap()
        );
        std::fs::write(&union_csv, both).unwrap();
        for kind in ["ph", "gh-basic", "gh", "euler"] {
            let base_hist = tmp(&format!("delta_base_{kind}.hist"));
            let union_hist = tmp(&format!("delta_union_{kind}.hist"));
            let updated_hist = tmp(&format!("delta_updated_{kind}.hist"));
            let hdelta = tmp(&format!("delta_{kind}.hdelta"));
            for (src, out) in [(&base_csv, &base_hist), (&union_csv, &union_hist)] {
                run(&argv(&[
                    "build-histogram",
                    src,
                    "--level",
                    "4",
                    "--kind",
                    kind,
                    "--out",
                    out,
                ]))
                .unwrap();
            }
            let out = run(&argv(&[
                "apply-delta",
                &base_hist,
                "--inserts",
                &extra_csv,
                "--out",
                &updated_hist,
                "--save-delta",
                &hdelta,
            ]))
            .unwrap();
            assert!(out.contains("applied delta"), "{out}");
            assert_eq!(
                std::fs::read(&updated_hist).unwrap(),
                std::fs::read(&union_hist).unwrap(),
                "apply-delta diverged from the full rebuild for {kind}"
            );
            // Folding the persisted .hdelta into the base file offline
            // reaches the same bytes.
            let compacted_hist = tmp(&format!("delta_compacted_{kind}.hist"));
            run(&argv(&[
                "compact",
                &base_hist,
                &hdelta,
                "--out",
                &compacted_hist,
            ]))
            .unwrap();
            assert_eq!(
                std::fs::read(&compacted_hist).unwrap(),
                std::fs::read(&union_hist).unwrap(),
                "compact diverged from the full rebuild for {kind}"
            );
            // Deleting the inserts again restores the base bytes.
            let restored_hist = tmp(&format!("delta_restored_{kind}.hist"));
            run(&argv(&[
                "apply-delta",
                &updated_hist,
                "--deletes",
                &extra_csv,
                "--out",
                &restored_hist,
            ]))
            .unwrap();
            assert_eq!(
                std::fs::read(&restored_hist).unwrap(),
                std::fs::read(&base_hist).unwrap(),
                "delete delta did not invert the insert delta for {kind}"
            );
        }
    }

    #[test]
    fn apply_delta_underflow_is_typed() {
        let base_csv = tmp("uflow_base.csv");
        run(&argv(&[
            "generate", "scrc", "--scale", "0.005", "--out", &base_csv,
        ]))
        .unwrap();
        let base_hist = tmp("uflow_base.hist");
        run(&argv(&[
            "build-histogram",
            &base_csv,
            "--level",
            "4",
            "--out",
            &base_hist,
        ]))
        .unwrap();
        // Deleting the dataset twice over must underflow: typed exit
        // code, not a panic or wrapped counters.
        let doubled = format!(
            "{}{}",
            std::fs::read_to_string(&base_csv).unwrap(),
            std::fs::read_to_string(&base_csv).unwrap()
        );
        let doubled_csv = tmp("uflow_doubled.csv");
        std::fs::write(&doubled_csv, doubled).unwrap();
        let err = run(&argv(&[
            "apply-delta",
            &base_hist,
            "--deletes",
            &doubled_csv,
            "--out",
            &tmp("uflow_out.hist"),
        ]))
        .unwrap_err();
        assert_eq!(err.code, exit_code::INVALID_DATA, "{}", err.message);
        assert!(
            err.message.contains("delta application rejected"),
            "{}",
            err.message
        );
    }

    #[test]
    fn serve_absorbs_mutations_without_restart() {
        let a_csv = tmp("mut_a.csv");
        let b_csv = tmp("mut_b.csv");
        run(&argv(&[
            "generate", "scrc", "--scale", "0.01", "--out", &a_csv,
        ]))
        .unwrap();
        run(&argv(&[
            "generate", "sura", "--scale", "0.005", "--out", &b_csv,
        ]))
        .unwrap();
        let stats_dir = tmp("mut_stats");
        drop(std::fs::remove_dir_all(&stats_dir));
        let ready = tmp("mut_ready.txt");
        drop(std::fs::remove_file(&ready));
        let serve_args = argv(&[
            "serve",
            &a_csv,
            &b_csv,
            "--level",
            "4",
            "--addr",
            "127.0.0.1:0",
            "--stats-dir",
            &stats_dir,
            "--ready-file",
            &ready,
        ]);
        let daemon = std::thread::spawn(move || run(&serve_args));
        let addr = {
            let mut tries = 0;
            loop {
                match std::fs::read_to_string(&ready) {
                    Ok(s) if s.ends_with('\n') => break s.trim().to_string(),
                    _ if tries > 500 => panic!("server never became ready"),
                    _ => {
                        tries += 1;
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                }
            }
        };

        let before = run(&argv(&[
            "client", "--addr", &addr, "estimate", "mut_a", "mut_b",
        ]))
        .unwrap();

        // Insert the whole B dataset into table A, then estimate again:
        // the daemon absorbed the write without restarting.
        let ins = run(&argv(&[
            "client",
            "--addr",
            &addr,
            "insert-batch",
            "mut_a",
            &b_csv,
        ]))
        .unwrap();
        assert!(ins.contains("insert-batch applied"), "{ins}");
        let after = run(&argv(&[
            "client", "--addr", &addr, "estimate", "mut_a", "mut_b",
        ]))
        .unwrap();
        assert_ne!(before.stdout, after.stdout, "estimate ignored the insert");

        // The WAL records the batch on disk.
        let wal = Path::new(&stats_dir).join("mut_a.wal");
        assert!(wal.exists(), "no WAL at {}", wal.display());

        // Deleting it again restores the original estimate.
        let del = run(&argv(&[
            "client",
            "--addr",
            &addr,
            "delete-batch",
            "mut_a",
            &b_csv,
        ]))
        .unwrap();
        assert!(del.contains("delete-batch applied"), "{del}");
        let restored = run(&argv(&[
            "client", "--addr", &addr, "estimate", "mut_a", "mut_b",
        ]))
        .unwrap();
        assert_eq!(before.stdout, restored.stdout);

        // A delete that matches nothing is refused with the data code.
        let err = run(&argv(&[
            "client",
            "--addr",
            &addr,
            "delete-batch",
            "mut_b",
            &a_csv,
        ]))
        .unwrap_err();
        assert_eq!(err.code, exit_code::INVALID_DATA, "{}", err.message);

        // Compaction folds the pending tiers and rewrites the base file.
        let comp = run(&argv(&["client", "--addr", &addr, "compact", "mut_a"])).unwrap();
        assert!(comp.contains("compacted mut_a"), "{comp}");
        assert!(
            Path::new(&stats_dir).join("mut_a.hist").exists(),
            "compaction did not persist the statistics file"
        );
        assert!(!wal.exists(), "compaction did not truncate the WAL");

        run(&argv(&["client", "--addr", &addr, "shutdown"])).unwrap();
        daemon.join().unwrap().unwrap();
    }

    #[test]
    fn client_usage_errors_do_not_need_a_server() {
        // Missing --addr fails before any connection attempt.
        let err = run(&argv(&["client", "ping"])).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE);
        // Connection refused maps to the I/O exit code.
        let err = run(&argv(&["client", "--addr", "127.0.0.1:1", "ping"])).unwrap_err();
        assert_eq!(err.code, exit_code::IO, "{}", err.message);
    }

    #[test]
    fn serve_requires_datasets() {
        let err = run(&argv(&["serve", "--addr", "127.0.0.1:0"])).unwrap_err();
        assert_eq!(err.code, exit_code::USAGE);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn parse_rect_accepts_whitespace() {
        let r = parse_rect("0.1, 0.2, 0.5, 0.6").unwrap();
        assert_eq!(r, Rect::new(0.1, 0.2, 0.5, 0.6));
    }

    #[test]
    fn every_kind_builds_and_estimates() {
        let csv = tmp("kinds.csv");
        run(&argv(&[
            "generate", "scrc", "--scale", "0.005", "--out", &csv,
        ]))
        .unwrap();
        for kind in ["ph", "gh-basic", "gh", "euler"] {
            let hist = tmp(&format!("kinds_{kind}.hist"));
            let out = run(&argv(&[
                "build-histogram",
                &csv,
                "--level",
                "4",
                "--kind",
                kind,
                "--out",
                &hist,
            ]))
            .unwrap();
            assert!(out.contains("built"), "{out}");
            let est = run(&argv(&["estimate", &hist, &hist])).unwrap();
            assert!(est.contains("selectivity"), "{kind}: {est}");
        }
        let err = run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "4",
            "--kind",
            "voronoi",
            "--out",
            &tmp("nope.hist"),
        ]))
        .unwrap_err();
        assert_eq!(err.code, exit_code::USAGE);
    }

    #[test]
    fn sharded_build_writes_identical_file() {
        let csv = tmp("shards.csv");
        run(&argv(&[
            "generate", "sura", "--scale", "0.01", "--out", &csv,
        ]))
        .unwrap();
        for kind in ["ph", "gh-basic", "gh", "euler"] {
            let direct = tmp(&format!("shards_{kind}_direct.hist"));
            let merged = tmp(&format!("shards_{kind}_merged.hist"));
            run(&argv(&[
                "build-histogram",
                &csv,
                "--level",
                "4",
                "--kind",
                kind,
                "--out",
                &direct,
            ]))
            .unwrap();
            run(&argv(&[
                "build-histogram",
                &csv,
                "--level",
                "4",
                "--kind",
                kind,
                "--shards",
                "5",
                "--out",
                &merged,
            ]))
            .unwrap();
            assert_eq!(
                std::fs::read(&direct).unwrap(),
                std::fs::read(&merged).unwrap(),
                "{kind}: --shards must produce a byte-identical file"
            );
        }
    }

    #[test]
    fn merge_histogram_command() {
        let csv = tmp("mh.csv");
        run(&argv(&[
            "generate", "scrc", "--scale", "0.005", "--out", &csv,
        ]))
        .unwrap();
        let hist = tmp("mh.hist");
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "4",
            "--out",
            &hist,
        ]))
        .unwrap();
        // Merging a histogram with itself doubles the object count.
        let merged = tmp("mh_merged.hist");
        let out = run(&argv(&["merge-histogram", &hist, &hist, "--out", &merged])).unwrap();
        assert!(out.contains("merged 2 GH histograms"), "{out}");
        assert!(out.contains("1000 objects"), "{out}");
        let est = run(&argv(&["estimate", &merged, &hist])).unwrap();
        assert!(est.contains("selectivity"), "{est}");

        // Mixed kinds refuse to merge with the mismatch exit code.
        let ph = tmp("mh_ph.hist");
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "4",
            "--kind",
            "ph",
            "--out",
            &ph,
        ]))
        .unwrap();
        let err = run(&argv(&["merge-histogram", &hist, &ph, "--out", &merged])).unwrap_err();
        assert_eq!(err.code, exit_code::MISMATCH);
        assert!(err.message.contains("common scheme"), "{}", err.message);

        // Fewer than two inputs is a usage error.
        assert_eq!(
            run(&argv(&["merge-histogram", &hist, "--out", &merged]))
                .unwrap_err()
                .code,
            exit_code::USAGE
        );
    }

    #[test]
    fn window_count_rejects_non_gh_kinds() {
        let csv = tmp("wc_euler.csv");
        run(&argv(&[
            "generate", "sura", "--scale", "0.005", "--out", &csv,
        ]))
        .unwrap();
        let hist = tmp("wc_euler.hist");
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "4",
            "--kind",
            "euler",
            "--out",
            &hist,
        ]))
        .unwrap();
        let err = run(&argv(&["window-count", &hist, "--window", "0,0,0.5,0.5"])).unwrap_err();
        assert_eq!(err.code, exit_code::MISMATCH);
        assert!(
            err.message.contains("not a GH histogram"),
            "{}",
            err.message
        );
    }
}

#[cfg(test)]
mod format_tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("sjsel_format_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn binary_dataset_pipeline() {
        let bin = tmp("ds.bin");
        run(&argv(&[
            "generate", "sura", "--scale", "0.005", "--out", &bin,
        ]))
        .unwrap();
        let stats = run(&argv(&["stats", &bin])).unwrap();
        assert!(stats.contains("count          500"), "{stats}");
        // Binary file feeds histogram building and exact joins too.
        let hist = tmp("ds.hist");
        run(&argv(&[
            "build-histogram",
            &bin,
            "--level",
            "4",
            "--out",
            &hist,
        ]))
        .unwrap();
        let out = run(&argv(&["exact-join", &bin, &bin])).unwrap();
        assert!(out.contains("pairs"), "{out}");
    }

    #[test]
    fn sparse_and_dense_gh_files_estimate_identically() {
        let csv = tmp("sp.csv");
        run(&argv(&[
            "generate", "scrc", "--scale", "0.005", "--out", &csv,
        ]))
        .unwrap();
        let dense = tmp("sp_dense.hist");
        let sparse = tmp("sp_sparse.hist");
        run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "5",
            "--out",
            &dense,
        ]))
        .unwrap();
        let out = run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "5",
            "--sparse",
            "--out",
            &sparse,
        ]))
        .unwrap();
        assert!(out.contains("sparse"), "{out}");
        let e1 = run(&argv(&["estimate", &dense, &dense])).unwrap();
        let e2 = run(&argv(&["estimate", &sparse, &dense])).unwrap();
        let e3 = run(&argv(&["estimate", &sparse, &sparse])).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(e1, e3);
        // Sparse file on clustered data should be smaller than dense.
        let ds = std::fs::metadata(&dense).unwrap().len();
        let sp = std::fs::metadata(&sparse).unwrap().len();
        assert!(sp < ds, "sparse {sp} !< dense {ds}");
        // window-count accepts sparse files.
        let wc = run(&argv(&[
            "window-count",
            &sparse,
            "--window",
            "0.3,0.6,0.5,0.8",
        ]))
        .unwrap();
        assert!(wc.contains("estimated objects"), "{wc}");
    }

    #[test]
    fn sparse_rejected_for_other_schemes() {
        let csv = tmp("ph.csv");
        run(&argv(&[
            "generate", "sura", "--scale", "0.002", "--out", &csv,
        ]))
        .unwrap();
        let err = run(&argv(&[
            "build-histogram",
            &csv,
            "--level",
            "3",
            "--scheme",
            "ph",
            "--sparse",
            "--out",
            &tmp("ph.hist"),
        ]))
        .unwrap_err();
        assert_eq!(err.code, exit_code::USAGE);
    }
}
