//! Sampling-based spatial join selectivity estimation (paper Section 2).
//!
//! A sample is drawn from each input dataset, the samples are joined
//! (by default with an R-tree join, which the paper found preferable to a
//! direct plane sweep even for samples), and the sample selectivity is
//! used directly as the estimate — for samples of `x%` and `y%` the
//! scaled result size is `pairs · (100/x) · (100/y)`, which divided by
//! `N₁·N₂` is exactly `pairs / (n₁·n₂)`.
//!
//! The paper's three sampling techniques are implemented, plus two
//! extensions:
//!
//! * [`SamplingTechnique::Regular`] (RS) — every `k`-th item,
//!   `k = ⌈N/n⌉`.
//! * [`SamplingTechnique::RandomWithReplacement`] (RSWR) — `n` uniform
//!   draws with replacement.
//! * [`SamplingTechnique::Sorted`] (SS) — like RS, but the dataset is
//!   first sorted by the Hilbert value of each MBR's center. The sort cost
//!   is charged to the drawing phase, which is why the paper finds SS
//!   unattractive.
//! * [`SamplingTechnique::RandomWithoutReplacement`] (RSWOR, extension) —
//!   a uniform subset via partial Fisher–Yates.
//! * [`SamplingTechnique::Stratified`] (extension) — proportional
//!   per-grid-cell allocation, reducing variance on clustered data.
//!
//! The estimator reports phase timings (draw / index build / join) so the
//! experiment runner can compute the paper's *Est. Time 1* (R-trees on
//! the base data not available) and *Est. Time 2* (available) metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sj_geo::{Extent, Rect};
use sj_rtree::{join_count, RTree, RTreeConfig};
use std::time::{Duration, Instant};

/// How sample elements are selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingTechnique {
    /// RS: every `k`-th element in input order.
    Regular,
    /// RSWR: uniform draws with replacement.
    RandomWithReplacement,
    /// SS: every `k`-th element in Hilbert order of MBR centers.
    Sorted,
    /// RSWOR: a uniform sample *without* replacement (Fisher–Yates
    /// partial shuffle). **Extension beyond the paper** — removes RSWR's
    /// duplicate draws, which matter at large sample fractions.
    RandomWithoutReplacement,
    /// Stratified spatial sampling: the extent is gridded and each
    /// stratum (cell) contributes samples proportional to its population,
    /// picked uniformly within the stratum. **Extension beyond the
    /// paper** — reduces estimator variance on clustered data.
    Stratified {
        /// Gridding level of the strata (`4^level` cells).
        level: u32,
    },
}

impl SamplingTechnique {
    /// Short display name used in figure output (paper legend names).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SamplingTechnique::Regular => "RS",
            SamplingTechnique::RandomWithReplacement => "RSWR",
            SamplingTechnique::Sorted => "SS",
            SamplingTechnique::RandomWithoutReplacement => "RSWOR",
            SamplingTechnique::Stratified { .. } => "STRAT",
        }
    }
}

/// The three techniques evaluated in the paper (Figure 6), in the
/// paper's legend order.
pub const PAPER_TECHNIQUES: [SamplingTechnique; 3] = [
    SamplingTechnique::RandomWithReplacement,
    SamplingTechnique::Regular,
    SamplingTechnique::Sorted,
];

/// Every technique the crate implements: the paper's three plus the
/// RSWOR and stratified extensions. Iterate [`PAPER_TECHNIQUES`] instead
/// when regenerating a figure from the paper.
pub const ALL_TECHNIQUES: [SamplingTechnique; 5] = [
    SamplingTechnique::RandomWithReplacement,
    SamplingTechnique::Regular,
    SamplingTechnique::Sorted,
    SamplingTechnique::RandomWithoutReplacement,
    SamplingTechnique::Stratified { level: 3 },
];

/// Join algorithm used on the two samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinBackend {
    /// Build an R-tree on each sample and run the synchronized-traversal
    /// join — the paper's choice.
    #[default]
    RTree,
    /// Forward plane sweep directly on the samples.
    PlaneSweep,
}

/// Number of sample elements for a dataset of `n` items at `percent`.
/// Never zero for a non-empty dataset, and never above `n`.
///
/// # Panics
/// Panics unless `0 < percent <= 100`.
#[must_use]
pub fn sample_size(n: usize, percent: f64) -> usize {
    assert!(
        percent > 0.0 && percent <= 100.0,
        "percent must be in (0, 100], got {percent}"
    );
    if n == 0 {
        return 0;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let k = (n as f64 * percent / 100.0).round() as usize;
    k.clamp(1, n)
}

/// Draws a sample of `percent`% from `rects` with the given technique.
///
/// `extent` is needed by Sorted Sampling for Hilbert keys; `seed` only
/// affects RSWR (RS and SS are deterministic given the input order).
#[must_use]
pub fn draw_sample(
    technique: SamplingTechnique,
    rects: &[Rect],
    percent: f64,
    extent: &Extent,
    seed: u64,
) -> Vec<Rect> {
    if rects.is_empty() {
        return Vec::new();
    }
    let n = sample_size(rects.len(), percent);
    match technique {
        SamplingTechnique::Regular => every_kth(rects, None, n),
        SamplingTechnique::RandomWithReplacement => {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n)
                .map(|_| rects[rng.random_range(0..rects.len())])
                .collect()
        }
        SamplingTechnique::Sorted => {
            let perm = sj_hilbert::sort_by_hilbert(sj_hilbert::DEFAULT_ORDER, extent, rects);
            every_kth(rects, Some(&perm), n)
        }
        SamplingTechnique::RandomWithoutReplacement => {
            let mut rng = StdRng::seed_from_u64(seed);
            // Partial Fisher-Yates: after i swaps, indices[..i] is a
            // uniform i-subset.
            let mut indices: Vec<usize> = (0..rects.len()).collect();
            for i in 0..n {
                let j = rng.random_range(i..indices.len());
                indices.swap(i, j);
            }
            indices[..n].iter().map(|&i| rects[i]).collect()
        }
        SamplingTechnique::Stratified { level } => stratified_sample(rects, n, extent, level, seed),
    }
}

/// Proportional stratified sampling: bucket objects by the grid cell of
/// their MBR center, give each stratum `floor(share)` samples plus
/// largest-remainder rounding to hit `n` exactly, and draw uniformly
/// without replacement within each stratum.
fn stratified_sample(
    rects: &[Rect],
    n: usize,
    extent: &Extent,
    level: u32,
    seed: u64,
) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cells_per_axis = 1u32 << level.min(12);
    let cell_of = |r: &Rect| -> usize {
        let c = r.center();
        let nx = ((c.x - extent.rect().xlo) / extent.width() * f64::from(cells_per_axis))
            .floor()
            .clamp(0.0, f64::from(cells_per_axis - 1));
        let ny = ((c.y - extent.rect().ylo) / extent.height() * f64::from(cells_per_axis))
            .floor()
            .clamp(0.0, f64::from(cells_per_axis - 1));
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            (ny as usize) * cells_per_axis as usize + nx as usize
        }
    };
    let mut strata: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, r) in rects.iter().enumerate() {
        strata.entry(cell_of(r)).or_default().push(i);
    }
    #[allow(clippy::cast_precision_loss)]
    let total = rects.len() as f64;
    // Largest-remainder apportionment of the n samples over the strata.
    let mut quotas: Vec<(usize, usize, f64)> = strata
        .iter()
        .map(|(&cell, members)| {
            #[allow(clippy::cast_precision_loss)]
            let share = n as f64 * members.len() as f64 / total;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let base = (share.floor() as usize).min(members.len());
            (cell, base, share - share.floor())
        })
        .collect();
    let mut assigned: usize = quotas.iter().map(|q| q.1).sum();
    quotas.sort_by(|a, b| b.2.total_cmp(&a.2));
    for q in &mut quotas {
        if assigned >= n {
            break;
        }
        if q.1 < strata[&q.0].len() {
            q.1 += 1;
            assigned += 1;
        }
    }
    let mut out = Vec::with_capacity(n);
    for (cell, quota, _) in quotas {
        let members = &strata[&cell];
        // Uniform without replacement within the stratum.
        let mut idx: Vec<usize> = members.clone();
        for i in 0..quota.min(idx.len()) {
            let j = rng.random_range(i..idx.len());
            idx.swap(i, j);
            out.push(rects[idx[i]]);
        }
    }
    out
}

/// Takes every `k`-th element (`k = ⌈N/n⌉`) in input order, or in the
/// order of `perm` when given.
fn every_kth(rects: &[Rect], perm: Option<&[usize]>, n: usize) -> Vec<Rect> {
    let k = rects.len().div_ceil(n);
    match perm {
        None => rects.iter().copied().step_by(k).collect(),
        Some(p) => p.iter().step_by(k).map(|&i| rects[i]).collect(),
    }
}

/// Wall-clock cost breakdown of one sampling estimation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleTimings {
    /// Drawing the two samples (includes the Hilbert sort for SS).
    pub draw: Duration,
    /// Building R-trees on the samples (zero for the plane-sweep backend).
    pub build: Duration,
    /// Joining the samples.
    pub join: Duration,
}

impl SampleTimings {
    /// Total estimation time.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.draw + self.build + self.join
    }
}

/// The outcome of a sampling estimation.
#[derive(Debug, Clone, Copy)]
pub struct SamplingOutcome {
    /// Estimated join selectivity (`sample_pairs / (n₁·n₂)`).
    pub selectivity: f64,
    /// Estimated result size (`selectivity · N₁·N₂`).
    pub pairs: f64,
    /// Drawn sample sizes.
    pub sample_sizes: (usize, usize),
    /// Intersecting pairs found between the samples.
    pub sample_pairs: u64,
    /// Phase timings.
    pub timings: SampleTimings,
}

/// A configured sampling estimator.
///
/// ```
/// use sj_geo::{Extent, Rect};
/// use sj_sampling::{SamplingEstimator, SamplingTechnique};
///
/// let a: Vec<Rect> = (0..100)
///     .map(|i| Rect::new(i as f64 / 100.0, 0.4, i as f64 / 100.0 + 0.01, 0.6))
///     .collect();
/// let est = SamplingEstimator::new(SamplingTechnique::Regular, 100.0, 100.0);
/// let out = est.estimate(&a, &a, &Extent::unit());
/// assert_eq!(out.sample_sizes, (100, 100));
/// assert!(out.selectivity > 0.0, "self join is non-empty");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SamplingEstimator {
    /// Sample selection technique.
    pub technique: SamplingTechnique,
    /// Sample size for the left dataset, in percent `(0, 100]`.
    pub percent_left: f64,
    /// Sample size for the right dataset, in percent `(0, 100]`.
    pub percent_right: f64,
    /// Join backend for the samples.
    pub backend: JoinBackend,
    /// R-tree configuration for the sample indexes.
    pub rtree_config: RTreeConfig,
    /// RNG seed (RSWR only).
    pub seed: u64,
}

impl SamplingEstimator {
    /// Creates an estimator with default backend (R-tree join) and config.
    #[must_use]
    pub fn new(technique: SamplingTechnique, percent_left: f64, percent_right: f64) -> Self {
        Self {
            technique,
            percent_left,
            percent_right,
            backend: JoinBackend::default(),
            rtree_config: RTreeConfig::default(),
            seed: 0x5EED,
        }
    }

    /// Runs the estimation on two datasets sharing `extent`.
    #[must_use]
    pub fn estimate(&self, left: &[Rect], right: &[Rect], extent: &Extent) -> SamplingOutcome {
        // sj-lint: allow(determinism, wall-clock measures reported draw cost; sampling itself is seeded)
        let t0 = Instant::now();
        let sa = draw_sample(self.technique, left, self.percent_left, extent, self.seed);
        let sb = draw_sample(
            self.technique,
            right,
            self.percent_right,
            extent,
            self.seed ^ 0x9E37,
        );
        let draw = t0.elapsed();

        let (sample_pairs, build, join) = match self.backend {
            JoinBackend::RTree => {
                // sj-lint: allow(determinism, wall-clock measures reported build cost, never estimator input)
                let t1 = Instant::now();
                let ta = RTree::bulk_load_str(self.rtree_config, &sa);
                let tb = RTree::bulk_load_str(self.rtree_config, &sb);
                let build = t1.elapsed();
                // sj-lint: allow(determinism, wall-clock measures reported join cost, never estimator input)
                let t2 = Instant::now();
                let pairs = join_count(&ta, &tb);
                (pairs, build, t2.elapsed())
            }
            JoinBackend::PlaneSweep => {
                // sj-lint: allow(determinism, wall-clock measures reported join cost, never estimator input)
                let t2 = Instant::now();
                let pairs = sj_sweep::sweep_join_count(&sa, &sb);
                (pairs, Duration::ZERO, t2.elapsed())
            }
        };

        #[allow(clippy::cast_precision_loss)]
        let denom = sa.len() as f64 * sb.len() as f64;
        #[allow(clippy::cast_precision_loss)]
        let selectivity = if denom == 0.0 {
            0.0
        } else {
            (sample_pairs as f64 / denom).clamp(0.0, 1.0)
        };
        #[allow(clippy::cast_precision_loss)]
        let pairs = selectivity * left.len() as f64 * right.len() as f64;
        SamplingOutcome {
            selectivity,
            pairs,
            sample_sizes: (sa.len(), sb.len()),
            sample_pairs,
            timings: SampleTimings { draw, build, join },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geo::Point;

    fn uniform(n: usize, seed: u64, side: f64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0 - side);
                let y = rng.random_range(0.0..1.0 - side);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..side),
                    y + rng.random_range(0.0..side),
                )
            })
            .collect()
    }

    #[test]
    fn sample_size_boundaries() {
        assert_eq!(sample_size(1000, 10.0), 100);
        assert_eq!(sample_size(1000, 0.1), 1);
        assert_eq!(
            sample_size(3, 0.1),
            1,
            "non-empty datasets yield non-empty samples"
        );
        assert_eq!(sample_size(1000, 100.0), 1000);
        assert_eq!(sample_size(0, 10.0), 0);
    }

    #[test]
    #[should_panic(expected = "percent")]
    fn sample_size_rejects_out_of_range() {
        let _ = sample_size(10, 150.0);
    }

    #[test]
    fn regular_sampling_takes_every_kth() {
        let rects: Vec<Rect> = (0..10)
            .map(|i| Rect::from_point(Point::new(f64::from(i), 0.0)))
            .collect();
        let s = draw_sample(SamplingTechnique::Regular, &rects, 30.0, &Extent::unit(), 0);
        // n = 3, k = ceil(10/3) = 4 → indices 0, 4, 8.
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].xlo, 0.0);
        assert_eq!(s[1].xlo, 4.0);
        assert_eq!(s[2].xlo, 8.0);
    }

    #[test]
    fn full_percent_returns_whole_dataset() {
        let rects = uniform(100, 1, 0.1);
        for t in ALL_TECHNIQUES {
            let s = draw_sample(t, &rects, 100.0, &Extent::unit(), 7);
            assert_eq!(s.len(), 100, "{t:?} at 100% must return N items");
        }
        // RS at 100% is the identity.
        let s = draw_sample(
            SamplingTechnique::Regular,
            &rects,
            100.0,
            &Extent::unit(),
            0,
        );
        assert_eq!(s, rects);
    }

    #[test]
    fn rswr_is_seed_deterministic_and_from_dataset() {
        let rects = uniform(50, 2, 0.1);
        let e = Extent::unit();
        let a = draw_sample(
            SamplingTechnique::RandomWithReplacement,
            &rects,
            20.0,
            &e,
            9,
        );
        let b = draw_sample(
            SamplingTechnique::RandomWithReplacement,
            &rects,
            20.0,
            &e,
            9,
        );
        let c = draw_sample(
            SamplingTechnique::RandomWithReplacement,
            &rects,
            20.0,
            &e,
            10,
        );
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|r| rects.contains(r)));
    }

    #[test]
    fn sorted_sampling_is_hilbert_ordered() {
        let rects = uniform(200, 3, 0.01);
        let e = Extent::unit();
        let s = draw_sample(SamplingTechnique::Sorted, &rects, 10.0, &e, 0);
        let keys: Vec<u64> = s
            .iter()
            .map(|r| sj_hilbert::rect_key(sj_hilbert::DEFAULT_ORDER, &e, r))
            .collect();
        assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "SS sample must be Hilbert-sorted"
        );
        assert_eq!(s.len(), 20);
    }

    #[test]
    fn estimator_exact_at_full_samples() {
        // 100/100 sampling with a deterministic technique gives the exact
        // selectivity, whatever the backend.
        let a = uniform(300, 4, 0.05);
        let b = uniform(300, 5, 0.05);
        let exact = sj_sweep::sweep_join_selectivity(&a, &b);
        for backend in [JoinBackend::RTree, JoinBackend::PlaneSweep] {
            let est = SamplingEstimator {
                backend,
                ..SamplingEstimator::new(SamplingTechnique::Regular, 100.0, 100.0)
            };
            let out = est.estimate(&a, &b, &Extent::unit());
            assert!(
                (out.selectivity - exact).abs() < 1e-15,
                "{backend:?}: {} vs {exact}",
                out.selectivity
            );
            assert_eq!(out.sample_pairs, sj_sweep::sweep_join_count(&a, &b));
        }
    }

    #[test]
    fn estimator_close_at_large_samples() {
        let a = uniform(4000, 6, 0.03);
        let b = uniform(4000, 7, 0.03);
        let exact = sj_sweep::sweep_join_selectivity(&a, &b);
        let est = SamplingEstimator::new(SamplingTechnique::RandomWithReplacement, 30.0, 30.0);
        let out = est.estimate(&a, &b, &Extent::unit());
        let err = (out.selectivity - exact).abs() / exact;
        assert!(err < 0.25, "30% RSWR error {err:.3}");
        assert_eq!(out.sample_sizes, (1200, 1200));
        assert!(out.pairs > 0.0);
    }

    #[test]
    fn estimator_handles_empty_inputs() {
        let a = uniform(10, 8, 0.1);
        let est = SamplingEstimator::new(SamplingTechnique::Regular, 50.0, 50.0);
        let out = est.estimate(&a, &[], &Extent::unit());
        assert_eq!(out.selectivity, 0.0);
        assert_eq!(out.pairs, 0.0);
        assert_eq!(out.sample_sizes.1, 0);
    }

    #[test]
    fn backends_agree_on_pair_counts() {
        let a = uniform(500, 9, 0.05);
        let b = uniform(500, 10, 0.05);
        let mk = |backend| SamplingEstimator {
            backend,
            ..SamplingEstimator::new(SamplingTechnique::Regular, 20.0, 20.0)
        };
        let rtree = mk(JoinBackend::RTree).estimate(&a, &b, &Extent::unit());
        let sweep = mk(JoinBackend::PlaneSweep).estimate(&a, &b, &Extent::unit());
        assert_eq!(rtree.sample_pairs, sweep.sample_pairs);
        assert_eq!(sweep.timings.build, Duration::ZERO);
    }

    #[test]
    fn asymmetric_percentages() {
        let a = uniform(1000, 11, 0.02);
        let b = uniform(2000, 12, 0.02);
        let est = SamplingEstimator::new(SamplingTechnique::Regular, 1.0, 10.0);
        let out = est.estimate(&a, &b, &Extent::unit());
        assert_eq!(out.sample_sizes, (10, 200));
    }

    #[test]
    fn technique_names() {
        assert_eq!(SamplingTechnique::Regular.name(), "RS");
        assert_eq!(SamplingTechnique::RandomWithReplacement.name(), "RSWR");
        assert_eq!(SamplingTechnique::Sorted.name(), "SS");
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use sj_geo::Point;

    fn uniform(n: usize, seed: u64, side: f64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0 - side);
                let y = rng.random_range(0.0..1.0 - side);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..side),
                    y + rng.random_range(0.0..side),
                )
            })
            .collect()
    }

    #[test]
    fn rswor_has_no_duplicates() {
        // Distinct source rects => a without-replacement sample has no
        // repeated elements (RSWR would, at this 50% fraction).
        let rects: Vec<Rect> = (0..100)
            .map(|i| Rect::from_point(Point::new(f64::from(i), 0.0)))
            .collect();
        let s = draw_sample(
            SamplingTechnique::RandomWithoutReplacement,
            &rects,
            50.0,
            &Extent::unit(),
            3,
        );
        assert_eq!(s.len(), 50);
        let mut xs: Vec<f64> = s.iter().map(|r| r.xlo).collect();
        xs.sort_by(f64::total_cmp);
        assert!(
            xs.windows(2).all(|w| w[0] != w[1]),
            "duplicates in RSWOR sample"
        );
    }

    #[test]
    fn rswor_full_fraction_is_a_permutation() {
        let rects = uniform(60, 4, 0.05);
        let mut s = draw_sample(
            SamplingTechnique::RandomWithoutReplacement,
            &rects,
            100.0,
            &Extent::unit(),
            5,
        );
        assert_eq!(s.len(), 60);
        let mut expected = rects.clone();
        let key = |r: &Rect| (r.xlo, r.ylo, r.xhi, r.yhi);
        s.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
        expected.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
        assert_eq!(s, expected);
    }

    #[test]
    fn stratified_sample_hits_exact_size_and_covers_strata() {
        // Two clusters: proportional allocation must sample both.
        let mut rects = Vec::new();
        for i in 0..300 {
            let t = f64::from(i % 100) / 1000.0;
            rects.push(Rect::centered(Point::new(0.1 + t, 0.1 + t), 0.002, 0.002));
        }
        for i in 0..100 {
            let t = f64::from(i) / 1000.0;
            rects.push(Rect::centered(Point::new(0.9 - t, 0.9 - t), 0.002, 0.002));
        }
        let s = draw_sample(
            SamplingTechnique::Stratified { level: 2 },
            &rects,
            10.0,
            &Extent::unit(),
            6,
        );
        assert_eq!(s.len(), 40, "exact proportional size");
        let near_a = s.iter().filter(|r| r.center().x < 0.5).count();
        let near_b = s.len() - near_a;
        // 3:1 population ratio must be approximately preserved.
        assert!((28..=32).contains(&near_a), "cluster A got {near_a}/40");
        assert!((8..=12).contains(&near_b), "cluster B got {near_b}/40");
    }

    #[test]
    fn stratified_estimator_runs_end_to_end() {
        let a = uniform(2000, 7, 0.03);
        let b = uniform(2000, 8, 0.03);
        let exact = sj_sweep::sweep_join_selectivity(&a, &b);
        let est = SamplingEstimator::new(SamplingTechnique::Stratified { level: 3 }, 20.0, 20.0);
        let out = est.estimate(&a, &b, &Extent::unit());
        assert_eq!(out.sample_sizes, (400, 400));
        let err = (out.selectivity - exact).abs() / exact;
        assert!(err < 0.35, "stratified estimate err {err:.3}");
    }

    /// The motivation for stratification: on clustered data its
    /// estimates vary less across seeds than RSWR's at the same size.
    #[test]
    fn stratified_variance_below_rswr_on_clustered_data() {
        // Clustered ⋈ clustered join.
        let mk = |seed: u64| -> Vec<Rect> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..3000)
                .map(|_| {
                    let cluster = rng.random_range(0..3usize);
                    let (cx, cy) = [(0.2, 0.2), (0.5, 0.8), (0.85, 0.4)][cluster];
                    let x = (cx + rng.random_range(-0.06..0.06f64)).clamp(0.0, 0.99);
                    let y = (cy + rng.random_range(-0.06..0.06f64)).clamp(0.0, 0.99);
                    Rect::new(x, y, x + 0.008, y + 0.008)
                })
                .collect()
        };
        let a = mk(9);
        let b = mk(10);
        let spread = |technique: SamplingTechnique| -> f64 {
            let estimates: Vec<f64> = (0..12)
                .map(|seed| {
                    let est = SamplingEstimator {
                        seed,
                        ..SamplingEstimator::new(technique, 5.0, 5.0)
                    };
                    est.estimate(&a, &b, &Extent::unit()).selectivity
                })
                .collect();
            let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
            (estimates.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / estimates.len() as f64)
                .sqrt()
                / mean
        };
        let rswr = spread(SamplingTechnique::RandomWithReplacement);
        let strat = spread(SamplingTechnique::Stratified { level: 3 });
        assert!(
            strat < rswr,
            "stratification should cut seed-to-seed spread: STRAT {strat:.4} vs RSWR {rswr:.4}"
        );
    }
}
