//! Hilbert space-filling curve.
//!
//! The paper uses Hilbert values in two places:
//!
//! * **Sorted Sampling (SS)** sorts the input dataset by the Hilbert value
//!   of each MBR's center before taking every k-th element (Section 2).
//! * **Packed R-trees** in the style of Kamel & Faloutsos ("On Packing
//!   R-trees", CIKM 1993) bulk-load leaves in Hilbert order; the paper's
//!   reference \[15\] underlies both SS and the analytical model extended by
//!   the PH scheme.
//!
//! The implementation is the classic iterative rotate/reflect conversion
//! between the distance along the curve `d` and cell coordinates `(x, y)`
//! on a `2^order × 2^order` grid.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sj_geo::{Extent, Point, Rect};

/// Default curve order used for Hilbert keys: a 2^16 × 2^16 grid resolves
/// ~65k distinct positions per axis, far below f64 noise for our extents.
pub const DEFAULT_ORDER: u32 = 16;

/// Converts grid coordinates `(x, y)` on a `2^order` grid to the distance
/// along the Hilbert curve.
///
/// # Panics
/// Panics if `x` or `y` does not fit in `order` bits, or if `order > 31`.
#[must_use]
pub fn xy_to_d(order: u32, mut x: u32, mut y: u32) -> u64 {
    assert!(order <= 31, "order must be <= 31");
    let n: u32 = 1 << order;
    assert!(x < n && y < n, "coordinates must fit the grid");
    let mut d: u64 = 0;
    let mut s: u32 = n / 2;
    while s > 0 {
        let rx = u32::from((x & s) > 0);
        let ry = u32::from((y & s) > 0);
        d += u64::from(s) * u64::from(s) * u64::from((3 * rx) ^ ry);
        // Rotate the quadrant (reflection is about the full grid).
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Converts a distance along the Hilbert curve back to grid coordinates.
///
/// Inverse of [`xy_to_d`].
#[must_use]
pub fn d_to_xy(order: u32, mut d: u64) -> (u32, u32) {
    assert!(order <= 31, "order must be <= 31");
    let n: u64 = 1 << order;
    assert!(d < n * n, "distance must fit the curve");
    let (mut x, mut y): (u64, u64) = (0, 0);
    let mut s: u64 = 1;
    while s < n {
        let rx = 1 & (d / 2);
        let ry = 1 & (d ^ rx);
        // Rotate.
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        d /= 4;
        s *= 2;
    }
    (x as u32, y as u32)
}

/// Computes the Hilbert key of a point inside an extent at the given curve
/// order. Points outside the extent are clamped onto its boundary.
#[must_use]
pub fn point_key(order: u32, extent: &Extent, p: Point) -> u64 {
    let n = (1u64 << order) as f64;
    let u = extent.normalize(p);
    let clamp = |v: f64| (v.clamp(0.0, 1.0) * n).min(n - 1.0);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    xy_to_d(order, clamp(u.x).floor() as u32, clamp(u.y).floor() as u32)
}

/// Computes the Hilbert key of an MBR, keyed by its center point — the
/// convention of both the paper's Sorted Sampling and Hilbert R-tree
/// packing.
#[must_use]
pub fn rect_key(order: u32, extent: &Extent, r: &Rect) -> u64 {
    point_key(order, extent, r.center())
}

/// Sorts indices of `rects` by Hilbert key of their centers.
///
/// Returns a permutation: `perm[i]` is the index of the `i`-th rectangle in
/// Hilbert order. The sort is stable so equal keys preserve input order.
#[must_use]
pub fn sort_by_hilbert(order: u32, extent: &Extent, rects: &[Rect]) -> Vec<usize> {
    let keys: Vec<u64> = rects.iter().map(|r| rect_key(order, extent, r)).collect();
    let mut perm: Vec<usize> = (0..rects.len()).collect();
    perm.sort_by_key(|&i| keys[i]);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn order_one_curve_matches_reference() {
        // The order-1 Hilbert curve visits (0,0), (0,1), (1,1), (1,0).
        assert_eq!(d_to_xy(1, 0), (0, 0));
        assert_eq!(d_to_xy(1, 1), (0, 1));
        assert_eq!(d_to_xy(1, 2), (1, 1));
        assert_eq!(d_to_xy(1, 3), (1, 0));
    }

    #[test]
    fn order_two_curve_is_a_valid_tour() {
        // Each consecutive pair of cells on the curve is 4-adjacent and the
        // curve visits every cell exactly once.
        let n = 4u32;
        let mut seen = vec![false; (n * n) as usize];
        let mut prev: Option<(u32, u32)> = None;
        for d in 0..u64::from(n * n) {
            let (x, y) = d_to_xy(2, d);
            let idx = (y * n + x) as usize;
            assert!(!seen[idx], "cell visited twice");
            seen[idx] = true;
            if let Some((px, py)) = prev {
                let dist = px.abs_diff(x) + py.abs_diff(y);
                assert_eq!(dist, 1, "consecutive cells must be adjacent");
            }
            prev = Some((x, y));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn point_key_clamps_out_of_extent() {
        let e = Extent::unit();
        // Outside the unit square: must not panic, must clamp.
        let k = point_key(4, &e, Point::new(2.0, -1.0));
        let corner = point_key(4, &e, Point::new(1.0, 0.0));
        assert_eq!(k, corner);
    }

    #[test]
    fn sort_by_hilbert_is_permutation() {
        let e = Extent::unit();
        let rects: Vec<Rect> = (0..32)
            .map(|i| {
                let t = f64::from(i) / 32.0;
                Rect::centered(Point::new(t, (t * 7.0).fract()), 0.01, 0.01)
            })
            .collect();
        let perm = sort_by_hilbert(DEFAULT_ORDER, &e, &rects);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        // Keys must be non-decreasing along the permutation.
        let keys: Vec<u64> = perm
            .iter()
            .map(|&i| rect_key(DEFAULT_ORDER, &e, &rects[i]))
            .collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(order in 1u32..12, x in 0u32..4096, y in 0u32..4096) {
            let n = 1u32 << order;
            let (x, y) = (x % n, y % n);
            let d = xy_to_d(order, x, y);
            prop_assert_eq!(d_to_xy(order, d), (x, y));
        }

        #[test]
        fn prop_d_roundtrip(order in 1u32..10, d in 0u64..1_048_576) {
            let n = 1u64 << order;
            let d = d % (n * n);
            let (x, y) = d_to_xy(order, d);
            prop_assert_eq!(xy_to_d(order, x, y), d);
        }

        /// Locality: adjacent curve positions are adjacent grid cells.
        #[test]
        fn prop_unit_steps(order in 1u32..8, d in 0u64..16_384) {
            let n = 1u64 << order;
            let d = d % (n * n - 1);
            let (x0, y0) = d_to_xy(order, d);
            let (x1, y1) = d_to_xy(order, d + 1);
            prop_assert_eq!(x0.abs_diff(x1) + y0.abs_diff(y1), 1);
        }
    }
}
