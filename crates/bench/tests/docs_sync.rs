//! Documentation drift guard for the perf reports.
//!
//! docs/KERNELS.md documents the top-level sections of `BENCH_5.json`
//! as a markdown table. This test parses that table out of the prose
//! and diffs it against [`sj_bench::BENCH5_SECTIONS`] — the same
//! constant the bench binary asserts its serialized keys against at
//! run time — so the guide, the schema constant, and the artifact
//! cannot silently drift apart. The committed `BENCH_5.json` at the
//! repo root is held to the same key list, in the same order.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; docs/ sits at the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn docs_kernels_md() -> String {
    let path = repo_root().join("docs/KERNELS.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// First-column backticked cells of the first markdown table after the
/// given heading.
fn table_first_column(doc: &str, heading: &str) -> Vec<String> {
    let start = doc
        .find(heading)
        .unwrap_or_else(|| panic!("docs/KERNELS.md lost its {heading:?} section"));
    let mut rows = Vec::new();
    let mut in_table = false;
    for line in doc[start..].lines().skip(1) {
        let line = line.trim();
        if line.starts_with('|') {
            in_table = true;
            let first = line
                .trim_matches('|')
                .split('|')
                .next()
                .unwrap_or("")
                .trim();
            if first.starts_with('`') {
                rows.push(first.trim_matches('`').to_string());
            }
        } else if in_table {
            break;
        }
    }
    assert!(!rows.is_empty(), "no table rows found after {heading:?}");
    rows
}

#[test]
fn documented_sections_match_bench5_sections() {
    let doc = docs_kernels_md();
    let documented = table_first_column(&doc, "## Sections of `BENCH_5.json`");
    assert_eq!(
        documented,
        sj_bench::BENCH5_SECTIONS,
        "the docs/KERNELS.md section table diverges from sj_bench::BENCH5_SECTIONS"
    );
}

#[test]
fn committed_bench5_artifact_has_the_documented_keys_in_order() {
    let path = repo_root().join("BENCH_5.json");
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    // Top-level keys of the pretty-printed report sit at exactly two
    // spaces of indentation — the same textual scan the bench binary
    // runs before writing the file.
    let keys: Vec<&str> = json
        .lines()
        .filter_map(|l| l.strip_prefix("  \"")?.split_once('"').map(|(k, _)| k))
        .collect();
    assert_eq!(
        keys,
        sj_bench::BENCH5_SECTIONS,
        "the committed BENCH_5.json diverges from sj_bench::BENCH5_SECTIONS"
    );
}

#[test]
fn trajectory_table_covers_every_bench_number() {
    let doc = docs_kernels_md();
    let reports = table_first_column(&doc, "## The `BENCH_<n>.json` trajectory");
    assert_eq!(
        reports,
        [
            "BENCH_1.json",
            "BENCH_2.json",
            "BENCH_3.json",
            "BENCH_4.json",
            "BENCH_5.json"
        ],
        "the docs/KERNELS.md trajectory table must cover every report number, gap included"
    );
    // The artifacts the trajectory calls committed must exist; the one
    // it calls never-committed must not.
    for present in [
        "BENCH_1.json",
        "BENCH_2.json",
        "BENCH_4.json",
        "BENCH_5.json",
    ] {
        assert!(
            repo_root().join(present).is_file(),
            "{present} is documented as committed but is missing from the repo root"
        );
    }
    assert!(
        !repo_root().join("BENCH_3.json").exists(),
        "BENCH_3.json is documented as the never-committed gap, but it exists"
    );
}
