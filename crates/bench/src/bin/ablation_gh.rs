//! Ablation studies for design choices DESIGN.md calls out (not figures
//! from the paper, but the comparisons its design arguments rest on):
//!
//! * **Basic vs. revised GH** — how much accuracy the fractional-mass
//!   refinement of Section 3.2.2 buys at each level (Figure 4's point).
//! * **Sd correction on/off for PH** — the `AvgSpan` division of Eq. 3 is
//!   approximated here by comparing PH to an unadjusted variant built from
//!   GH-free parts; we report PH's level sweep alongside its level-0
//!   parametric baseline to expose the multiple-counting drift.
//! * **R-tree split algorithms and bulk loaders** — join/build cost of
//!   Linear vs Quadratic splits vs STR vs Hilbert packing, which justifies
//!   using STR packing for the baselines.
//!
//! ```sh
//! cargo run --release -p sj-bench --bin ablation_gh -- --scale 0.2
//! ```

use sj_bench::{banner, pct, render_table, HarnessConfig};
use sj_core::experiment::{fig7_row, HistogramScheme};
use sj_core::{join_count, RTree, RTreeConfig, SplitAlgorithm};
use std::time::Instant;

fn main() {
    let cfg = HarnessConfig::from_args();
    banner("Ablations: GH refinement & R-tree construction", &cfg);
    let contexts = cfg.prepare_contexts();

    // Ablation 1: basic vs revised GH accuracy per level.
    for ctx in &contexts {
        println!("--- {}: basic vs revised GH ---", ctx.name);
        let mut rows = Vec::new();
        for level in cfg.levels.clone() {
            let basic = fig7_row(ctx, HistogramScheme::GhBasic, level);
            let revised = fig7_row(ctx, HistogramScheme::Gh, level);
            rows.push(vec![
                level.to_string(),
                pct(basic.error_pct),
                pct(revised.error_pct),
                pct(basic.space_pct),
                pct(revised.space_pct),
            ]);
        }
        println!(
            "{}",
            render_table(
                &[
                    "level",
                    "basic err",
                    "revised err",
                    "basic space",
                    "revised space"
                ],
                &rows
            )
        );
    }

    // Ablation 2: PH with and without the AvgSpan multiple-counting
    // correction of Eq. 3 (paper Figure 1's motivation).
    use sj_core::{Grid, PhHistogram};
    for ctx in &contexts {
        println!("--- {}: PH AvgSpan correction on/off ---", ctx.name);
        let mut rows = Vec::new();
        for level in cfg.levels.clone() {
            let grid = Grid::new(level, ctx.extent).expect("level within bounds");
            let ha = PhHistogram::build(grid, &ctx.left.rects);
            let hb = PhHistogram::build(grid, &ctx.right.rects);
            let corrected = ha.estimate(&hb).expect("same grid").selectivity;
            let uncorrected = ha.estimate_uncorrected(&hb).expect("same grid").selectivity;
            let err = |est: f64| sj_core::error_pct(est, ctx.baseline.selectivity);
            rows.push(vec![
                level.to_string(),
                pct(err(corrected)),
                pct(err(uncorrected)),
                format!("{:.2}", (ha.avg_span() + hb.avg_span()) / 2.0),
            ]);
        }
        println!(
            "{}",
            render_table(
                &["level", "corrected err", "uncorrected err", "mean AvgSpan"],
                &rows
            )
        );
    }

    // Ablation 3: R-tree construction strategies (on the first join's
    // left dataset — construction cost is per-dataset).
    if let Some(ctx) = contexts.first() {
        println!(
            "--- R-tree construction: {} ({} rects) ---",
            ctx.left.name,
            ctx.left.len()
        );
        let rects = &ctx.left.rects;
        let other = RTree::bulk_load_str(RTreeConfig::default(), &ctx.right.rects);
        let mut rows = Vec::new();
        let mut measure = |label: &str, build: &dyn Fn() -> RTree| {
            let t0 = Instant::now();
            let tree = build();
            let build_time = t0.elapsed();
            let t1 = Instant::now();
            let pairs = join_count(&tree, &other);
            let join_time = t1.elapsed();
            rows.push(vec![
                label.to_string(),
                format!("{build_time:.1?}"),
                format!("{join_time:.1?}"),
                tree.height().to_string(),
                format!("{:.1} MiB", tree.size_bytes() as f64 / (1024.0 * 1024.0)),
                pairs.to_string(),
            ]);
        };
        measure("STR bulk load", &|| {
            RTree::bulk_load_str(RTreeConfig::default(), rects)
        });
        measure("Hilbert bulk load", &|| {
            RTree::bulk_load_hilbert(RTreeConfig::default(), rects)
        });
        measure("dynamic quadratic", &|| {
            let mut t = RTree::new(RTreeConfig::default());
            for (i, r) in rects.iter().enumerate() {
                t.insert(*r, i as u64);
            }
            t
        });
        measure("dynamic linear", &|| {
            let mut t = RTree::new(RTreeConfig {
                split: SplitAlgorithm::Linear,
                ..RTreeConfig::default()
            });
            for (i, r) in rects.iter().enumerate() {
                t.insert(*r, i as u64);
            }
            t
        });
        println!(
            "{}",
            render_table(
                &["construction", "build", "join", "height", "size", "pairs"],
                &rows
            )
        );
        println!("(identical pair counts across rows confirm the ablation is apples-to-apples)");
    }
}
