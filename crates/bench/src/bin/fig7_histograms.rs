//! Regenerates **Figure 7** (paper Section 4.4): the PH and GH histogram
//! schemes across gridding levels 0–9 on the four joins, reporting
//! estimation error, estimation time (vs. the R-tree join), building time
//! (vs. building the R-trees) and space cost (vs. the R-tree size).
//!
//! The PH point at level 0 *is* the prior parametric model of \[2\].
//!
//! ```sh
//! cargo run --release -p sj-bench --bin fig7_histograms -- --scale 1.0
//! ```

use sj_bench::{banner, pct, render_table, HarnessConfig};
use sj_core::experiment::fig7_rows_par;

fn main() {
    let cfg = HarnessConfig::from_args();
    banner("Figure 7: histogram-based techniques", &cfg);

    let contexts = cfg.prepare_contexts();
    let mut all_rows = Vec::new();
    for ctx in &contexts {
        println!(
            "--- {} ---  (N1 = {}, N2 = {}, actual pairs = {}, selectivity = {:.3e})",
            ctx.name,
            ctx.left.len(),
            ctx.right.len(),
            ctx.baseline.pairs,
            ctx.baseline.selectivity
        );
        let rows = fig7_rows_par(ctx, cfg.levels.clone(), cfg.parallelism);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.level.to_string(),
                    r.scheme.clone(),
                    format!("{:.3e}", r.estimated),
                    pct(r.error_pct),
                    pct(r.est_time_pct),
                    pct(r.build_time_pct),
                    pct(r.space_pct),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["level", "scheme", "estimate", "error", "est.time", "bld.time", "space"],
                &table
            )
        );
        all_rows.extend(rows);
    }
    cfg.write_json("fig7_histograms.json", &all_rows);
}
