//! Quantifies the paper's §4.3 caveat that sampling results are
//! "unstable — highly dataset and sample dependent": runs each sampling
//! technique across many seeds and reports the mean and seed-to-seed
//! spread of the estimation error, against GH's deterministic single
//! number at the same space budget.
//!
//! ```sh
//! cargo run --release -p sj-bench --bin stability_sampling -- --scale 0.2
//! ```

use sj_bench::{banner, pct, render_table, HarnessConfig};
use sj_core::experiment::{fig7_row, HistogramScheme};
use sj_core::{error_pct, Extent, SamplingEstimator, SamplingTechnique};

const SEEDS: u64 = 16;

fn main() {
    let cfg = HarnessConfig::from_args();
    banner("Sampling stability across seeds", &cfg);
    let contexts = cfg.prepare_contexts();

    for ctx in &contexts {
        println!(
            "--- {} ---  (actual selectivity {:.3e})",
            ctx.name, ctx.baseline.selectivity
        );
        let extent = Extent::new(ctx.extent.rect());
        let mut rows = Vec::new();
        for technique in [
            SamplingTechnique::RandomWithReplacement,
            SamplingTechnique::RandomWithoutReplacement,
            SamplingTechnique::Stratified { level: 4 },
        ] {
            for percent in [1.0f64, 10.0] {
                let errors: Vec<f64> = (0..SEEDS)
                    .map(|seed| {
                        let est = SamplingEstimator {
                            seed,
                            ..SamplingEstimator::new(technique, percent, percent)
                        };
                        let out = est.estimate(&ctx.left.rects, &ctx.right.rects, &extent);
                        error_pct(out.selectivity, ctx.baseline.selectivity)
                    })
                    .collect();
                let mean = errors.iter().sum::<f64>() / errors.len() as f64;
                let std = (errors.iter().map(|e| (e - mean).powi(2)).sum::<f64>()
                    / errors.len() as f64)
                    .sqrt();
                let worst = errors.iter().copied().fold(0.0f64, f64::max);
                rows.push(vec![
                    format!("{} {percent}%/{percent}%", technique.name()),
                    pct(mean),
                    pct(std),
                    pct(worst),
                ]);
            }
        }
        // GH at level 7: deterministic, one number, zero spread.
        let gh = fig7_row(ctx, HistogramScheme::Gh, 7);
        rows.push(vec![
            "GH level 7".to_string(),
            pct(gh.error_pct),
            "0% (deterministic)".to_string(),
            pct(gh.error_pct),
        ]);
        println!(
            "{}",
            render_table(
                &["estimator", "mean err", "err spread (std)", "worst err"],
                &rows
            )
        );
    }
    println!(
        "The paper's point, measured: sampling error varies run-to-run while the\n\
         histogram estimate is a stable, deterministic function of the data."
    );
}
