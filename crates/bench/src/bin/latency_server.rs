//! Perf baseline for the statistics daemon: writes `BENCH_5.json`
//! (every `BENCH_4.json` field preserved for comparability, plus the
//! SoA-kernel `kernels` section).
//!
//! `BENCH_<n>.json` naming rule (see [`sj_bench::BENCH5_SECTIONS`]):
//! each PR that adds a section bumps `<n>` and carries every prior
//! section forward unchanged. `BENCH_3.json` is the one on-disk gap —
//! the lock-rank PR renamed that report to `BENCH_4.json` rather than
//! leaving both files; the schema lineage skips nothing.
//!
//! Records, on a fixed seeded workload (SCRC ⋈ SURA at a fixed scale
//! and grid level):
//!
//! - **statistics build time** — wall time to build each dataset's GH
//!   histogram, the work a cold CLI run repeats on every invocation and
//!   a warm server pays exactly once;
//! - **cold-CLI estimate latency** — p50/p99 of full end-to-end
//!   `sjsel catalog-estimate` runs (CSV parse + histogram build +
//!   estimate) driven in-process through `sj_cli::run`;
//! - **warm-server estimate latency** — p50/p99 of `estimate` requests
//!   over a persistent [`sj_server::Client`] connection against a live
//!   daemon that loaded the catalog once;
//! - **batch amortization** — per-item latency of one `batch-estimate`
//!   frame versus the same pairs as sequential single requests;
//! - **merge throughput** — rectangles/sec and merges/sec of the
//!   sharded histogram build (`build_histogram_sharded`), the merge
//!   path `sj-lint verify-merge` proves bit-identical;
//! - **delta maintenance** — per-operation cost of the incremental
//!   path (`HistogramDelta::build` + `apply_delta`, the path `sj-lint
//!   verify-delta` proves rebuild-equivalent) versus a full histogram
//!   rebuild over the mutated dataset, at several dataset scales with
//!   a fixed small mutation batch;
//! - **mutation-path overhead** — warm per-op `insert-batch` /
//!   `delete-batch` latency through the hardened path (client-stamped
//!   mutation IDs, the retrying client, server deadlines and a
//!   connection ceiling — DESIGN.md §14) versus the unstamped,
//!   no-deadline baseline, measured in interleaved rounds against two
//!   live daemons so clock drift cancels;
//! - **sync-layer overhead** — per-op lock/unlock cost of the ranked
//!   `sj_core::sync::OrderedMutex` (DESIGN.md §15) versus a raw
//!   `std::sync::Mutex`, min-of-trials so scheduler noise cannot
//!   inflate either side;
//! - **kernel speedups** — p50/p99 estimate latency of the SoA kernel
//!   path (`sj_histogram::kernel`, DESIGN.md §16) with the views built
//!   once and reused, versus the retained scalar reference loops
//!   (`estimate_scalar`), per histogram family and dataset scale, plus
//!   build throughput through the `BinGrid`-hoisted binning kernels;
//!   every timed kernel estimate is asserted bit-identical to its
//!   scalar twin before either side is clocked.
//!
//! Five acceptance gates asserted by CI: warm-server p50 must sit at
//! least 5× below cold-CLI p50 (`meets_5x_floor`) — residency is the
//! entire point of the daemon; delta-apply throughput must be at
//! least 10× full-rebuild throughput at the largest benchmarked scale
//! (`delta.meets_10x_floor`) — constant-in-|D| maintenance is the
//! entire point of the incremental path; the hardened mutation
//! path must cost at most 5% over the baseline
//! (`mutation_path.meets_5pct_ceiling`) — durability and exactly-once
//! semantics must not tax the common case; and in release builds the
//! ranked wrapper must cost at most 2% over the raw lock
//! (`sync_layer.meets_2pct_ceiling`, with a small absolute-ns guard
//! against timer granularity) — the debug-only rank discipline must
//! compile away where performance counts; and the kernel estimate path
//! must run at least 1.5× faster than the scalar loop at the largest
//! benchmarked scale (`kernels.meets_1_5x_floor`) — the SoA layer must
//! pay for its existence where occupancy is densest.
//!
//! ```sh
//! cargo run --release -p sj-bench --bin latency_server -- --out BENCH_5.json
//! ```

use sj_datagen::presets;
use sj_geo::{Extent, Rect};
use sj_histogram::{build_histogram, build_histogram_sharded, Grid, HistogramDelta, HistogramKind};
use sj_server::{wire, Client, Frame, Opcode};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Fixed workload parameters: everything that shapes the numbers is
/// pinned here so two runs of the bench measure the same work.
const SCALE: f64 = 0.02;
const LEVEL: u32 = 6;
const COLD_ITERS: usize = 20;
const WARM_ITERS: usize = 2000;
const WARM_WARMUP: usize = 100;
const BATCH_SIZE: usize = 64;
const MERGE_SHARDS: usize = 8;
const MERGE_ROUNDS: usize = 5;
/// Dataset scales for the delta-maintenance section, smallest to
/// largest; the 10× floor is asserted at the last (largest) scale,
/// where a full rebuild is most expensive and the fixed-size batch
/// cheapest in proportion.
const DELTA_SCALES: [f64; 3] = [0.01, 0.05, 0.2];
const DELTA_INSERTS: usize = 64;
const DELTA_DELETES: usize = 32;
const DELTA_ROUNDS: usize = 15;
/// Mutation-path overhead section: batch size per operation, measured
/// insert+delete pairs per interleaved round, rounds, and warmup pairs
/// per path before any sample is kept.
const MUT_BATCH: usize = 32;
const MUT_PAIRS_PER_ROUND: usize = 5;
const MUT_ROUNDS: usize = 40;
const MUT_WARMUP_PAIRS: usize = 20;
/// Sync-layer microbench: uncontended lock/unlock pairs per trial and
/// trial count (the best trial wins — the floor is the honest signal
/// for an uncontended fast path; means smear in scheduler noise).
const SYNC_OPS: usize = 1_000_000;
const SYNC_TRIALS: usize = 7;
/// Absolute-ns guard on the 2% gate: at single-digit-ns per op, a 2%
/// relative window is below timer granularity, so a difference this
/// small passes regardless of the ratio.
const SYNC_NOISE_NS: f64 = 2.0;
/// Kernel-vs-scalar microbench (DESIGN.md §16): dataset scales smallest
/// to largest — the ≥1.5× floor is asserted at the last scale, where
/// occupancy is densest and the bitmap skip helps least, making it the
/// honest worst case for the kernel — plus calls per timed sample
/// (short estimates are batched so timer granularity cannot dominate),
/// samples per side, warmup calls, and build-throughput rounds.
const KERNEL_SCALES: [f64; 2] = [0.005, 0.02];
const KERNEL_REPS: usize = 8;
const KERNEL_SAMPLES: usize = 200;
const KERNEL_WARMUP: usize = 32;
const KERNEL_BUILD_ROUNDS: usize = 3;
const KERNEL_FLOOR: f64 = 1.5;

#[derive(serde::Serialize)]
struct LatencyStats {
    iters: usize,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
}

impl LatencyStats {
    fn from_samples(mut us: Vec<f64>) -> Self {
        us.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let iters = us.len();
        let pick = |q: f64| {
            let idx = ((iters as f64 * q) as usize).min(iters.saturating_sub(1));
            us.get(idx).copied().unwrap_or(f64::NAN)
        };
        let mean = us.iter().sum::<f64>() / iters.max(1) as f64;
        LatencyStats {
            iters,
            p50_us: pick(0.50),
            p99_us: pick(0.99),
            mean_us: mean,
        }
    }
}

#[derive(serde::Serialize)]
struct BuildStats {
    dataset: String,
    objects: usize,
    build_ms: f64,
}

#[derive(serde::Serialize)]
struct BatchStats {
    batch_size: usize,
    batch_per_item_us: f64,
    single_per_item_us: f64,
    amortization: f64,
}

#[derive(serde::Serialize)]
struct MergeStats {
    shards: usize,
    rects: usize,
    rounds: usize,
    sharded_build_ms: f64,
    rects_per_sec: f64,
    merges_per_sec: f64,
}

#[derive(serde::Serialize)]
struct Workload {
    datasets: Vec<String>,
    scale: f64,
    level: u32,
}

/// One dataset scale of the delta-maintenance comparison: mean cost of
/// a full rebuild over the mutated dataset versus one incremental
/// operation (`HistogramDelta::build` over the batch + `apply_delta`).
#[derive(serde::Serialize)]
struct DeltaScaleStats {
    scale: f64,
    objects: usize,
    batch_inserts: usize,
    batch_deletes: usize,
    rounds: usize,
    rebuild_ms: f64,
    delta_apply_ms: f64,
    rebuild_per_sec: f64,
    delta_per_sec: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct DeltaStats {
    kind: String,
    level: u32,
    scales: Vec<DeltaScaleStats>,
    largest_scale_speedup: f64,
    meets_10x_floor: bool,
}

/// The hardened-vs-baseline mutation comparison (DESIGN.md §14.3):
/// per-op latency of stamped, deadline-bounded `insert-batch` /
/// `delete-batch` requests against an admission-limited daemon, versus
/// unstamped requests with no deadlines against a default daemon.
#[derive(serde::Serialize)]
struct MutationPathStats {
    batch_size: usize,
    ops_per_path: usize,
    baseline: LatencyStats,
    hardened: LatencyStats,
    overhead_ratio_p50: f64,
    meets_5pct_ceiling: bool,
}

/// The ranked-lock overhead comparison (DESIGN.md §15): per-op cost of
/// an uncontended `OrderedMutex` lock/unlock versus a raw
/// `std::sync::Mutex`. In release builds the wrapper is a type alias
/// over the std lock and must measure free; debug builds carry the
/// rank discipline and report honestly without gating.
#[derive(serde::Serialize)]
struct SyncLayerStats {
    ops: usize,
    trials: usize,
    raw_ns_per_op: f64,
    ordered_ns_per_op: f64,
    overhead_ratio: f64,
    overhead_ns_per_op: f64,
    release_mode: bool,
    meets_2pct_ceiling: bool,
}

/// One family × scale cell of the kernel-vs-scalar estimate comparison
/// (DESIGN.md §16): the retained scalar reference loop versus the SoA
/// kernel path with the views built once and reused — the way a warm
/// server holds statistics resident.
#[derive(serde::Serialize)]
struct KernelEstimateStats {
    family: String,
    scale: f64,
    cells: usize,
    occupied_left: usize,
    occupied_right: usize,
    scalar: LatencyStats,
    kernel: LatencyStats,
    speedup_p50: f64,
}

/// Build throughput through the `BinGrid`-hoisted binning kernels (the
/// only build path — the hoisting itself is what the SoA layer buys the
/// build side, so this is a throughput record, not an A/B).
#[derive(serde::Serialize)]
struct KernelBuildStats {
    family: String,
    scale: f64,
    objects: usize,
    build_ms: f64,
    rects_per_sec: f64,
}

/// The `kernels` section: per-family estimate A/B and build throughput,
/// gated at the largest scale.
#[derive(serde::Serialize)]
struct KernelStats {
    level: u32,
    scales: Vec<f64>,
    reps_per_sample: usize,
    estimate: Vec<KernelEstimateStats>,
    build: Vec<KernelBuildStats>,
    floor: f64,
    gated_family: String,
    largest_scale_speedup_p50: f64,
    meets_1_5x_floor: bool,
}

/// The `BENCH_5.json` report: every `BENCH_4.json` field, unchanged,
/// plus the `kernels` section. Field order is pinned by
/// [`sj_bench::BENCH5_SECTIONS`] and asserted at run time.
#[derive(serde::Serialize)]
struct Bench5 {
    bench: String,
    workload: Workload,
    statistics_build: Vec<BuildStats>,
    cold_cli: LatencyStats,
    warm_server: LatencyStats,
    batch: BatchStats,
    merge: MergeStats,
    speedup_p50: f64,
    meets_5x_floor: bool,
    delta: DeltaStats,
    mutation_path: MutationPathStats,
    sync_layer: SyncLayerStats,
    kernels: KernelStats,
}

/// Measures the sync-layer overhead. Both sides run the identical
/// loop shape — acquire, mutate the protected counter, release — and
/// trials interleave raw/ordered so thermal drift cancels. The best
/// (minimum) per-op time of each side is compared.
fn sync_layer() -> SyncLayerStats {
    use sj_core::sync::{LockRank, OrderedMutex};
    // sj-lint: allow(lock-discipline, the raw std lock IS the benchmark's comparison baseline; ranking it would measure the wrapper against itself)
    let raw = std::sync::Mutex::new(0u64);
    let ordered = OrderedMutex::new(LockRank::Catalog, "bench.sync_layer", 0u64);
    let mut raw_best_ns = f64::INFINITY;
    let mut ordered_best_ns = f64::INFINITY;
    for _ in 0..SYNC_TRIALS {
        let t = Instant::now();
        for i in 0..SYNC_OPS {
            *raw.lock().expect("bench mutex") += i as u64 & 1;
        }
        raw_best_ns = raw_best_ns.min(t.elapsed().as_secs_f64() * 1e9 / SYNC_OPS as f64);
        let t = Instant::now();
        for i in 0..SYNC_OPS {
            *ordered.lock() += i as u64 & 1;
        }
        ordered_best_ns = ordered_best_ns.min(t.elapsed().as_secs_f64() * 1e9 / SYNC_OPS as f64);
    }
    // Keep the counters observable so the loops cannot be elided.
    let raw_total = *std::hint::black_box(&raw).lock().expect("bench mutex");
    let ordered_total = *std::hint::black_box(&ordered).lock();
    assert_eq!(raw_total, ordered_total, "both sides did the same work");
    let overhead_ratio = ordered_best_ns / raw_best_ns;
    let overhead_ns_per_op = ordered_best_ns - raw_best_ns;
    let release_mode = !cfg!(debug_assertions);
    SyncLayerStats {
        ops: SYNC_OPS,
        trials: SYNC_TRIALS,
        raw_ns_per_op: raw_best_ns,
        ordered_ns_per_op: ordered_best_ns,
        overhead_ratio,
        overhead_ns_per_op,
        release_mode,
        // The gate is a release-build contract: debug builds carry the
        // rank discipline by design and only report.
        meets_2pct_ceiling: !release_mode
            || overhead_ratio <= 1.02
            || overhead_ns_per_op <= SYNC_NOISE_NS,
    }
}

/// Times a short operation: `KERNEL_REPS` calls per sample so timer
/// granularity cannot dominate sub-microsecond kernel estimates, with a
/// warmup pass before any sample is kept.
fn time_kernel_us<F: FnMut()>(mut f: F) -> LatencyStats {
    for _ in 0..KERNEL_WARMUP {
        f();
    }
    let mut us = Vec::with_capacity(KERNEL_SAMPLES);
    for _ in 0..KERNEL_SAMPLES {
        let t = Instant::now();
        for _ in 0..KERNEL_REPS {
            f();
        }
        us.push(secs_to_us(t.elapsed()) / KERNEL_REPS as f64);
    }
    LatencyStats::from_samples(us)
}

/// Times one family's typed build over `rects`, returning the
/// throughput record for the `BinGrid`-hoisted binning path.
fn kernel_build_stats<H>(
    family: &str,
    scale: f64,
    rects: &[Rect],
    build: impl Fn() -> H,
) -> KernelBuildStats {
    let t = Instant::now();
    for _ in 0..KERNEL_BUILD_ROUNDS {
        std::hint::black_box(build());
    }
    let secs = t.elapsed().as_secs_f64() / KERNEL_BUILD_ROUNDS as f64;
    #[allow(clippy::cast_precision_loss)]
    let rects_per_sec = rects.len() as f64 / secs;
    KernelBuildStats {
        family: family.to_string(),
        scale,
        objects: rects.len(),
        build_ms: secs * 1e3,
        rects_per_sec,
    }
}

/// Measures the SoA-kernel estimate path against the retained scalar
/// reference loops (DESIGN.md §16), per histogram family and dataset
/// scale, plus build throughput. Each kernel result is asserted
/// bit-identical to its scalar twin before either side is clocked — a
/// fast wrong kernel must fail here, not report a speedup.
fn kernels(grid: Grid) -> KernelStats {
    use sj_histogram::kernel::{GhBasicView, GhView, PhView};
    use sj_histogram::{GhBasicHistogram, GhHistogram, PhHistogram};
    let mut estimate = Vec::new();
    let mut build = Vec::new();
    for &scale in &KERNEL_SCALES {
        let a = presets::scrc(scale).rects;
        let b = presets::sura(scale).rects;

        let (h1, h2) = (PhHistogram::build(grid, &a), PhHistogram::build(grid, &b));
        let (v1, v2) = (PhView::new(&h1), PhView::new(&h2));
        let scalar_est = h1.estimate_scalar(&h2).expect("grids match");
        let kernel_est = v1.estimate(&v2).expect("grids match");
        assert_eq!(
            kernel_est.selectivity.to_bits(),
            scalar_est.selectivity.to_bits(),
            "PH kernel estimate must be bit-identical to the scalar loop"
        );
        let scalar = time_kernel_us(|| {
            std::hint::black_box(h1.estimate_scalar(&h2).expect("grids match"));
        });
        let kernel = time_kernel_us(|| {
            std::hint::black_box(v1.estimate(&v2).expect("grids match"));
        });
        estimate.push(KernelEstimateStats {
            family: "ph".to_string(),
            scale,
            cells: grid.num_cells(),
            occupied_left: v1.occupied_cells(),
            occupied_right: v2.occupied_cells(),
            speedup_p50: scalar.p50_us / kernel.p50_us,
            scalar,
            kernel,
        });
        build.push(kernel_build_stats("ph", scale, &a, || {
            PhHistogram::build(grid, &a)
        }));

        let (g1, g2) = (GhHistogram::build(grid, &a), GhHistogram::build(grid, &b));
        let (w1, w2) = (GhView::new(&g1), GhView::new(&g2));
        let scalar_est = g1.estimate_scalar(&g2).expect("grids match");
        let kernel_est = w1.estimate(&w2).expect("grids match");
        assert_eq!(
            kernel_est.selectivity.to_bits(),
            scalar_est.selectivity.to_bits(),
            "GH kernel estimate must be bit-identical to the scalar loop"
        );
        let scalar = time_kernel_us(|| {
            std::hint::black_box(g1.estimate_scalar(&g2).expect("grids match"));
        });
        let kernel = time_kernel_us(|| {
            std::hint::black_box(w1.estimate(&w2).expect("grids match"));
        });
        estimate.push(KernelEstimateStats {
            family: "gh".to_string(),
            scale,
            cells: grid.num_cells(),
            occupied_left: w1.occupied_cells(),
            occupied_right: w2.occupied_cells(),
            speedup_p50: scalar.p50_us / kernel.p50_us,
            scalar,
            kernel,
        });
        build.push(kernel_build_stats("gh", scale, &a, || {
            GhHistogram::build(grid, &a)
        }));

        let (k1, k2) = (
            GhBasicHistogram::build(grid, &a),
            GhBasicHistogram::build(grid, &b),
        );
        let (u1, u2) = (GhBasicView::new(&k1), GhBasicView::new(&k2));
        let scalar_est = k1.estimate_scalar(&k2).expect("grids match");
        let kernel_est = u1.estimate(&u2).expect("grids match");
        assert_eq!(
            kernel_est.selectivity.to_bits(),
            scalar_est.selectivity.to_bits(),
            "basic-GH kernel estimate must be bit-identical to the scalar loop"
        );
        let scalar = time_kernel_us(|| {
            std::hint::black_box(k1.estimate_scalar(&k2).expect("grids match"));
        });
        let kernel = time_kernel_us(|| {
            std::hint::black_box(u1.estimate(&u2).expect("grids match"));
        });
        estimate.push(KernelEstimateStats {
            family: "gh_basic".to_string(),
            scale,
            cells: grid.num_cells(),
            occupied_left: u1.occupied_cells(),
            occupied_right: u2.occupied_cells(),
            speedup_p50: scalar.p50_us / kernel.p50_us,
            scalar,
            kernel,
        });
        build.push(kernel_build_stats("gh_basic", scale, &a, || {
            GhBasicHistogram::build(grid, &a)
        }));
    }
    // The gate reads the revised GH family — the paper's headline
    // estimator and the production estimate path — at the last
    // (largest, densest) scale.
    let gated_family = "gh";
    let largest_scale = KERNEL_SCALES[KERNEL_SCALES.len() - 1];
    let largest_scale_speedup_p50 = estimate
        .iter()
        .find(|e| e.family == gated_family && e.scale == largest_scale)
        .map_or(0.0, |e| e.speedup_p50);
    KernelStats {
        level: grid.level(),
        scales: KERNEL_SCALES.to_vec(),
        reps_per_sample: KERNEL_REPS,
        estimate,
        build,
        floor: KERNEL_FLOOR,
        gated_family: gated_family.to_string(),
        largest_scale_speedup_p50,
        meets_1_5x_floor: largest_scale_speedup_p50 >= KERNEL_FLOOR,
    }
}

/// Measures one scale of the delta-maintenance comparison. The timed
/// incremental operation is the whole maintenance path a WAL replay or
/// tier append pays — build the signed delta from the batch, then
/// apply it — alternating a forward and an inverse batch so the
/// histogram under maintenance returns to its base state every other
/// operation (no untimed clone in the loop).
fn delta_scale(grid: Grid, scale: f64) -> DeltaScaleStats {
    let base = presets::scrc(scale).rects;
    let donor = presets::sura(scale).rects;
    let inserts: Vec<Rect> = donor.iter().copied().take(DELTA_INSERTS).collect();
    let deletes: Vec<Rect> = base.iter().copied().take(DELTA_DELETES).collect();
    let target: Vec<Rect> = base
        .iter()
        .skip(DELTA_DELETES)
        .chain(&inserts)
        .copied()
        .collect();

    // Full rebuild over the mutated dataset, DELTA_ROUNDS times.
    let t = Instant::now();
    for _ in 0..DELTA_ROUNDS {
        let h = build_histogram(HistogramKind::Gh, grid, &target);
        assert_eq!(h.dataset_len(), target.len());
    }
    let rebuild_secs = t.elapsed().as_secs_f64() / DELTA_ROUNDS as f64;

    // Incremental maintenance: forward batch, then its inverse, each a
    // full build-delta-and-apply operation (2 ops per round).
    let mut maintained = build_histogram(HistogramKind::Gh, grid, &base);
    let before = maintained.persist();
    let ops = 2 * DELTA_ROUNDS;
    let t = Instant::now();
    for _ in 0..DELTA_ROUNDS {
        let forward = HistogramDelta::build(HistogramKind::Gh, grid, &inserts, &deletes);
        maintained.apply_delta(&forward).expect("forward applies");
        let inverse = HistogramDelta::build(HistogramKind::Gh, grid, &deletes, &inserts);
        maintained.apply_delta(&inverse).expect("inverse applies");
    }
    let delta_secs = t.elapsed().as_secs_f64() / ops as f64;
    assert_eq!(
        maintained.persist(),
        before,
        "forward/inverse maintenance must return to the base state"
    );

    DeltaScaleStats {
        scale,
        objects: base.len(),
        batch_inserts: inserts.len(),
        batch_deletes: deletes.len(),
        rounds: DELTA_ROUNDS,
        rebuild_ms: rebuild_secs * 1e3,
        delta_apply_ms: delta_secs * 1e3,
        rebuild_per_sec: 1.0 / rebuild_secs,
        delta_per_sec: 1.0 / delta_secs,
        speedup: rebuild_secs / delta_secs,
    }
}

fn secs_to_us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// The mutation batch both paths insert and then delete: fresh
/// rectangles in a band the seeded datasets leave sparse, so each
/// forward+inverse pair returns the daemon to its base state.
fn mutation_batch() -> Vec<Rect> {
    (0..MUT_BATCH)
        .map(|j| {
            let x = (j as f64 * 0.0171) % 0.9 + 0.01;
            Rect::new(x, 0.93, x + 0.012, 0.96)
        })
        .collect()
}

/// One timed round-trip of the **baseline** mutation path: a hand-built
/// wire-v3 frame with the unstamped `(0, 0)` mutation ID — exactly the
/// bytes the pre-hardening client sent — over a plain socket with no
/// deadlines, against a daemon with no admission limits. Encoding sits
/// inside the timed region to mirror what the real client pays.
fn baseline_mutation_us(stream: &mut TcpStream, op: Opcode, table: &str, rects: &[Rect]) -> f64 {
    let t = Instant::now();
    let mut p = Vec::new();
    wire::put_str(&mut p, table);
    wire::put_u64(&mut p, 0); // unstamped token
    wire::put_u64(&mut p, 0); // unstamped seq
    wire::put_u32(
        &mut p,
        u32::try_from(rects.len()).expect("batch fits in u32"),
    );
    for r in rects {
        wire::put_f64(&mut p, r.xlo);
        wire::put_f64(&mut p, r.ylo);
        wire::put_f64(&mut p, r.xhi);
        wire::put_f64(&mut p, r.yhi);
    }
    Frame::request(op, p)
        .write_to(stream)
        .expect("write request");
    let reply = Frame::read_from(stream).expect("read reply");
    assert_eq!(
        reply.opcode,
        op.response(),
        "baseline mutation must answer with its success opcode"
    );
    secs_to_us(t.elapsed())
}

/// One timed round-trip of the **hardened** mutation path: the real
/// client stamps a fresh mutation ID, wraps the call in the retry loop,
/// and both sides run under I/O deadlines.
fn hardened_mutation_us(client: &mut Client, insert: bool, table: &str, rects: &[Rect]) -> f64 {
    let t = Instant::now();
    let reply = if insert {
        client.insert_batch_with_retry(table, rects)
    } else {
        client.delete_batch_with_retry(table, rects)
    }
    .expect("hardened mutation must succeed");
    assert!(!reply.deduplicated, "fresh stamps never dedup");
    secs_to_us(t.elapsed())
}

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_string()).collect()
}

fn cli(parts: &[&str]) -> sj_cli::CliOutput {
    match sj_cli::run(&argv(parts)) {
        Ok(out) => out,
        Err(e) => panic!("cli {parts:?} failed: {e:?}"),
    }
}

/// Scratch directory for the seeded CSVs and the daemon ready-file.
fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join("sjsel_bench_latency");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Boots the daemon over the CSVs on an OS-assigned port, returning the
/// address and its join handle.
fn boot(
    a_csv: &str,
    b_csv: &str,
) -> (
    String,
    std::thread::JoinHandle<Result<sj_cli::CliOutput, sj_cli::CliError>>,
) {
    boot_with(a_csv, b_csv, &[], "ready.txt")
}

/// [`boot`] with extra `serve` flags and a caller-chosen ready-file
/// name, so two daemons (baseline and hardened) can run side by side.
fn boot_with(
    a_csv: &str,
    b_csv: &str,
    extra: &[&str],
    ready_name: &str,
) -> (
    String,
    std::thread::JoinHandle<Result<sj_cli::CliOutput, sj_cli::CliError>>,
) {
    let ready = scratch().join(ready_name);
    drop(std::fs::remove_file(&ready));
    let level = LEVEL.to_string();
    let ready_path = ready.to_string_lossy().into_owned();
    let mut parts = vec![
        "serve",
        a_csv,
        b_csv,
        "--level",
        &level,
        "--addr",
        "127.0.0.1:0",
        "--ready-file",
        &ready_path,
    ];
    parts.extend_from_slice(extra);
    let args = argv(&parts);
    let daemon = std::thread::spawn(move || sj_cli::run(&args));
    let mut tries = 0;
    let addr = loop {
        match std::fs::read_to_string(&ready) {
            Ok(s) if s.ends_with('\n') => break s.trim().to_string(),
            _ if tries > 1000 => panic!("server never became ready"),
            _ => {
                tries += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    };
    (addr, daemon)
}

fn main() {
    let mut out_path = "BENCH_5.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown argument {other:?} (only --out is accepted)"),
        }
    }

    let dir = scratch();
    let a_csv = dir.join("bench_a.csv").to_string_lossy().into_owned();
    let b_csv = dir.join("bench_b.csv").to_string_lossy().into_owned();
    let scale = SCALE.to_string();
    let level = LEVEL.to_string();
    cli(&["generate", "scrc", "--scale", &scale, "--out", &a_csv]);
    cli(&["generate", "sura", "--scale", &scale, "--out", &b_csv]);

    // --- statistics build time -------------------------------------
    let grid = Grid::new(LEVEL, Extent::unit()).expect("level within bounds");
    let a = presets::scrc(SCALE);
    let b = presets::sura(SCALE);
    let mut statistics_build = Vec::new();
    for ds in [&a, &b] {
        let t = Instant::now();
        let h = build_histogram(HistogramKind::Gh, grid, &ds.rects);
        let build_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(h.dataset_len(), ds.rects.len());
        statistics_build.push(BuildStats {
            dataset: ds.name.clone(),
            objects: ds.rects.len(),
            build_ms,
        });
        println!(
            "build {:>6}: {} objects in {:.1} ms",
            ds.name,
            ds.rects.len(),
            build_ms
        );
    }

    // --- cold CLI: full end-to-end runs ----------------------------
    let mut cold_us = Vec::with_capacity(COLD_ITERS);
    for _ in 0..COLD_ITERS {
        let t = Instant::now();
        let out = cli(&["catalog-estimate", &a_csv, &b_csv, "--level", &level]);
        cold_us.push(secs_to_us(t.elapsed()));
        assert!(out.stdout.contains("selectivity"), "{}", out.stdout);
    }
    let cold_cli = LatencyStats::from_samples(cold_us);
    println!(
        "cold  cli: p50 {:.0} us  p99 {:.0} us  ({} iters)",
        cold_cli.p50_us, cold_cli.p99_us, cold_cli.iters
    );

    // --- warm server: persistent connection ------------------------
    let (addr, daemon) = boot(&a_csv, &b_csv);
    let mut client = Client::connect(addr.as_str()).expect("connect");
    for _ in 0..WARM_WARMUP {
        client.estimate("bench_a", "bench_b").expect("warmup");
    }
    let mut warm_us = Vec::with_capacity(WARM_ITERS);
    for _ in 0..WARM_ITERS {
        let t = Instant::now();
        let r = client.estimate("bench_a", "bench_b").expect("estimate");
        warm_us.push(secs_to_us(t.elapsed()));
        assert!(r.selectivity.is_finite());
    }
    let warm_server = LatencyStats::from_samples(warm_us);
    println!(
        "warm  srv: p50 {:.0} us  p99 {:.0} us  ({} iters)",
        warm_server.p50_us, warm_server.p99_us, warm_server.iters
    );

    // --- batch amortization: one frame for N estimates --------------
    let pairs: Vec<(String, String)> = (0..BATCH_SIZE)
        .map(|_| ("bench_a".to_string(), "bench_b".to_string()))
        .collect();
    let t = Instant::now();
    let replies = client.batch_estimate(&pairs).expect("batch");
    let batch_per_item_us = secs_to_us(t.elapsed()) / BATCH_SIZE as f64;
    assert!(replies.iter().all(Result::is_ok));
    let t = Instant::now();
    for _ in 0..BATCH_SIZE {
        client.estimate("bench_a", "bench_b").expect("single");
    }
    let single_per_item_us = secs_to_us(t.elapsed()) / BATCH_SIZE as f64;
    let batch = BatchStats {
        batch_size: BATCH_SIZE,
        batch_per_item_us,
        single_per_item_us,
        amortization: single_per_item_us / batch_per_item_us,
    };
    println!(
        "batch    : {:.1} us/item batched vs {:.1} us/item single ({:.1}x)",
        batch.batch_per_item_us, batch.single_per_item_us, batch.amortization
    );

    // --- mutation-path overhead: hardened vs baseline ----------------
    // A second daemon runs with the full hardening switched on; the
    // first (default-config) daemon doubles as the baseline target.
    // Rounds interleave the two paths so clock drift and cache state
    // cancel instead of biasing one side.
    let (hard_addr, hard_daemon) = boot_with(
        &a_csv,
        &b_csv,
        &["--max-connections", "64", "--io-timeout-ms", "5000"],
        "ready_hardened.txt",
    );
    let mut hardened_client = Client::connect(hard_addr.as_str()).expect("connect hardened");
    hardened_client
        .set_io_timeout(Some(Duration::from_millis(5000)))
        .expect("client deadline");
    let mut baseline_stream = TcpStream::connect(addr.as_str()).expect("connect baseline");
    let rects = mutation_batch();
    for _ in 0..MUT_WARMUP_PAIRS {
        baseline_mutation_us(&mut baseline_stream, Opcode::InsertBatch, "bench_a", &rects);
        baseline_mutation_us(&mut baseline_stream, Opcode::DeleteBatch, "bench_a", &rects);
        hardened_mutation_us(&mut hardened_client, true, "bench_a", &rects);
        hardened_mutation_us(&mut hardened_client, false, "bench_a", &rects);
    }
    let ops_per_path = MUT_ROUNDS * MUT_PAIRS_PER_ROUND * 2;
    let mut base_us = Vec::with_capacity(ops_per_path);
    let mut hard_us = Vec::with_capacity(ops_per_path);
    for _ in 0..MUT_ROUNDS {
        for _ in 0..MUT_PAIRS_PER_ROUND {
            base_us.push(baseline_mutation_us(
                &mut baseline_stream,
                Opcode::InsertBatch,
                "bench_a",
                &rects,
            ));
            base_us.push(baseline_mutation_us(
                &mut baseline_stream,
                Opcode::DeleteBatch,
                "bench_a",
                &rects,
            ));
        }
        for _ in 0..MUT_PAIRS_PER_ROUND {
            hard_us.push(hardened_mutation_us(
                &mut hardened_client,
                true,
                "bench_a",
                &rects,
            ));
            hard_us.push(hardened_mutation_us(
                &mut hardened_client,
                false,
                "bench_a",
                &rects,
            ));
        }
    }
    drop(baseline_stream);
    hardened_client
        .shutdown_server()
        .expect("shutdown hardened");
    hard_daemon
        .join()
        .expect("join hardened")
        .expect("hardened daemon exit");
    let baseline = LatencyStats::from_samples(base_us);
    let hardened = LatencyStats::from_samples(hard_us);
    let overhead_ratio_p50 = hardened.p50_us / baseline.p50_us;
    println!(
        "mutation : baseline p50 {:.1} us vs hardened p50 {:.1} us ({:.3}x)",
        baseline.p50_us, hardened.p50_us, overhead_ratio_p50
    );
    let mutation_path = MutationPathStats {
        batch_size: MUT_BATCH,
        ops_per_path,
        baseline,
        hardened,
        overhead_ratio_p50,
        meets_5pct_ceiling: overhead_ratio_p50 <= 1.05,
    };

    client.shutdown_server().expect("shutdown");
    daemon.join().expect("join").expect("daemon exit");

    // --- merge throughput: the sharded build path -------------------
    let rects = &a.rects;
    let chunk = rects.len().div_ceil(MERGE_SHARDS).max(1);
    let shards: Vec<&[sj_geo::Rect]> = rects.chunks(chunk).collect();
    let t = Instant::now();
    for _ in 0..MERGE_ROUNDS {
        let merged = build_histogram_sharded(HistogramKind::Gh, grid, &shards);
        assert_eq!(merged.dataset_len(), rects.len());
    }
    let elapsed = t.elapsed().as_secs_f64();
    let merge = MergeStats {
        shards: shards.len(),
        rects: rects.len(),
        rounds: MERGE_ROUNDS,
        sharded_build_ms: elapsed * 1e3 / MERGE_ROUNDS as f64,
        rects_per_sec: (rects.len() * MERGE_ROUNDS) as f64 / elapsed,
        merges_per_sec: (shards.len().saturating_sub(1) * MERGE_ROUNDS) as f64 / elapsed,
    };
    println!(
        "merge    : {} shards, {:.1} ms/build, {:.0} rects/s",
        merge.shards, merge.sharded_build_ms, merge.rects_per_sec
    );

    // --- delta maintenance vs full rebuild --------------------------
    let scales: Vec<DeltaScaleStats> = DELTA_SCALES
        .iter()
        .map(|&scale| {
            let s = delta_scale(grid, scale);
            println!(
                "delta    : scale {:.3} ({} objects): rebuild {:.2} ms vs \
                 delta op {:.2} ms ({:.1}x)",
                s.scale, s.objects, s.rebuild_ms, s.delta_apply_ms, s.speedup
            );
            s
        })
        .collect();
    let largest_scale_speedup = scales.last().map_or(0.0, |s| s.speedup);
    let delta = DeltaStats {
        kind: "gh".to_string(),
        level: LEVEL,
        scales,
        largest_scale_speedup,
        meets_10x_floor: largest_scale_speedup >= 10.0,
    };

    // --- sync-layer overhead: ranked wrapper vs raw std lock ---------
    let sync_stats = sync_layer();
    println!(
        "sync     : raw {:.2} ns/op vs ordered {:.2} ns/op ({:.3}x, {})",
        sync_stats.raw_ns_per_op,
        sync_stats.ordered_ns_per_op,
        sync_stats.overhead_ratio,
        if sync_stats.release_mode {
            "release"
        } else {
            "debug"
        }
    );

    // --- kernel estimate/build: SoA views vs scalar loops ------------
    let kernel_stats = kernels(grid);
    for e in &kernel_stats.estimate {
        println!(
            "kernels  : {:>8} scale {:.3}: scalar p50 {:.2} us vs kernel p50 {:.2} us ({:.2}x, {}+{} of {} cells occupied)",
            e.family,
            e.scale,
            e.scalar.p50_us,
            e.kernel.p50_us,
            e.speedup_p50,
            e.occupied_left,
            e.occupied_right,
            e.cells
        );
    }
    for bs in &kernel_stats.build {
        println!(
            "kernels  : {:>8} scale {:.3}: build {:.1} ms ({:.0} rects/s)",
            bs.family, bs.scale, bs.build_ms, bs.rects_per_sec
        );
    }

    let speedup_p50 = cold_cli.p50_us / warm_server.p50_us;
    let report = Bench5 {
        bench: "latency_server".to_string(),
        workload: Workload {
            datasets: vec![a.name.clone(), b.name.clone()],
            scale: SCALE,
            level: LEVEL,
        },
        statistics_build,
        cold_cli,
        warm_server,
        batch,
        merge,
        speedup_p50,
        meets_5x_floor: speedup_p50 >= 5.0,
        delta,
        mutation_path,
        sync_layer: sync_stats,
        kernels: kernel_stats,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    // Top-level keys of the pretty JSON sit at exactly two spaces of
    // indentation; pin them against the documented section list so a
    // silent schema drift fails here and in the docs-sync test alike.
    let keys: Vec<&str> = json
        .lines()
        .filter_map(|l| l.strip_prefix("  \"")?.split_once('"').map(|(k, _)| k))
        .collect();
    assert_eq!(
        keys,
        sj_bench::BENCH5_SECTIONS,
        "BENCH_5.json top-level sections drifted from sj_bench::BENCH5_SECTIONS"
    );
    std::fs::write(&out_path, json).expect("write BENCH_5.json");
    let overhead = report.mutation_path.overhead_ratio_p50;
    let sync_overhead = report.sync_layer.overhead_ratio;
    let kernel_speedup = report.kernels.largest_scale_speedup_p50;
    println!(
        "\nspeedup p50: {speedup_p50:.1}x (floor 5x: {})\n\
         delta speedup at largest scale: {largest_scale_speedup:.1}x (floor 10x: {})\n\
         hardened mutation overhead p50: {overhead:.3}x (ceiling 1.05x: {})\n\
         sync-layer overhead: {sync_overhead:.3}x (release ceiling 1.02x: {})\n\
         kernel estimate speedup at largest scale: {kernel_speedup:.2}x (floor 1.5x: {})\n\
         wrote {out_path}",
        if report.meets_5x_floor {
            "PASS"
        } else {
            "FAIL"
        },
        if report.delta.meets_10x_floor {
            "PASS"
        } else {
            "FAIL"
        },
        if report.mutation_path.meets_5pct_ceiling {
            "PASS"
        } else {
            "FAIL"
        },
        if report.sync_layer.meets_2pct_ceiling {
            "PASS"
        } else {
            "FAIL"
        },
        if report.kernels.meets_1_5x_floor {
            "PASS"
        } else {
            "FAIL"
        }
    );
    assert!(
        report.meets_5x_floor,
        "warm-server p50 must be at least 5x below cold-CLI p50, got {speedup_p50:.2}x"
    );
    assert!(
        report.delta.meets_10x_floor,
        "delta-apply throughput must be at least 10x full-rebuild throughput \
         at the largest benchmarked scale, got {largest_scale_speedup:.2}x"
    );
    assert!(
        report.mutation_path.meets_5pct_ceiling,
        "the hardened mutation path must cost at most 5% over the \
         unstamped/no-deadline baseline, got {overhead:.3}x"
    );
    assert!(
        report.sync_layer.meets_2pct_ceiling,
        "the ranked lock wrapper must cost at most 2% over the raw std \
         lock in release builds, got {sync_overhead:.3}x"
    );
    assert!(
        report.kernels.meets_1_5x_floor,
        "the SoA kernel estimate path must run at least 1.5x faster than \
         the scalar loop at the largest benchmarked scale, got {kernel_speedup:.2}x"
    );
}
