//! Perf baseline for the statistics daemon: writes `BENCH_2.json`
//! (every `BENCH_1.json` field preserved for comparability, plus the
//! incremental-statistics section).
//!
//! Records, on a fixed seeded workload (SCRC ⋈ SURA at a fixed scale
//! and grid level):
//!
//! - **statistics build time** — wall time to build each dataset's GH
//!   histogram, the work a cold CLI run repeats on every invocation and
//!   a warm server pays exactly once;
//! - **cold-CLI estimate latency** — p50/p99 of full end-to-end
//!   `sjsel catalog-estimate` runs (CSV parse + histogram build +
//!   estimate) driven in-process through `sj_cli::run`;
//! - **warm-server estimate latency** — p50/p99 of `estimate` requests
//!   over a persistent [`sj_server::Client`] connection against a live
//!   daemon that loaded the catalog once;
//! - **batch amortization** — per-item latency of one `batch-estimate`
//!   frame versus the same pairs as sequential single requests;
//! - **merge throughput** — rectangles/sec and merges/sec of the
//!   sharded histogram build (`build_histogram_sharded`), the merge
//!   path `sj-lint verify-merge` proves bit-identical;
//! - **delta maintenance** — per-operation cost of the incremental
//!   path (`HistogramDelta::build` + `apply_delta`, the path `sj-lint
//!   verify-delta` proves rebuild-equivalent) versus a full histogram
//!   rebuild over the mutated dataset, at several dataset scales with
//!   a fixed small mutation batch.
//!
//! Two acceptance floors asserted by CI: warm-server p50 must sit at
//! least 5× below cold-CLI p50 (`meets_5x_floor`) — residency is the
//! entire point of the daemon — and delta-apply throughput must be at
//! least 10× full-rebuild throughput at the largest benchmarked scale
//! (`delta.meets_10x_floor`) — constant-in-|D| maintenance is the
//! entire point of the incremental path.
//!
//! ```sh
//! cargo run --release -p sj-bench --bin latency_server -- --out BENCH_2.json
//! ```

use sj_datagen::presets;
use sj_geo::{Extent, Rect};
use sj_histogram::{build_histogram, build_histogram_sharded, Grid, HistogramDelta, HistogramKind};
use sj_server::Client;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Fixed workload parameters: everything that shapes the numbers is
/// pinned here so two runs of the bench measure the same work.
const SCALE: f64 = 0.02;
const LEVEL: u32 = 6;
const COLD_ITERS: usize = 20;
const WARM_ITERS: usize = 2000;
const WARM_WARMUP: usize = 100;
const BATCH_SIZE: usize = 64;
const MERGE_SHARDS: usize = 8;
const MERGE_ROUNDS: usize = 5;
/// Dataset scales for the delta-maintenance section, smallest to
/// largest; the 10× floor is asserted at the last (largest) scale,
/// where a full rebuild is most expensive and the fixed-size batch
/// cheapest in proportion.
const DELTA_SCALES: [f64; 3] = [0.01, 0.05, 0.2];
const DELTA_INSERTS: usize = 64;
const DELTA_DELETES: usize = 32;
const DELTA_ROUNDS: usize = 15;

#[derive(serde::Serialize)]
struct LatencyStats {
    iters: usize,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
}

impl LatencyStats {
    fn from_samples(mut us: Vec<f64>) -> Self {
        us.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let iters = us.len();
        let pick = |q: f64| {
            let idx = ((iters as f64 * q) as usize).min(iters.saturating_sub(1));
            us.get(idx).copied().unwrap_or(f64::NAN)
        };
        let mean = us.iter().sum::<f64>() / iters.max(1) as f64;
        LatencyStats {
            iters,
            p50_us: pick(0.50),
            p99_us: pick(0.99),
            mean_us: mean,
        }
    }
}

#[derive(serde::Serialize)]
struct BuildStats {
    dataset: String,
    objects: usize,
    build_ms: f64,
}

#[derive(serde::Serialize)]
struct BatchStats {
    batch_size: usize,
    batch_per_item_us: f64,
    single_per_item_us: f64,
    amortization: f64,
}

#[derive(serde::Serialize)]
struct MergeStats {
    shards: usize,
    rects: usize,
    rounds: usize,
    sharded_build_ms: f64,
    rects_per_sec: f64,
    merges_per_sec: f64,
}

#[derive(serde::Serialize)]
struct Workload {
    datasets: Vec<String>,
    scale: f64,
    level: u32,
}

/// One dataset scale of the delta-maintenance comparison: mean cost of
/// a full rebuild over the mutated dataset versus one incremental
/// operation (`HistogramDelta::build` over the batch + `apply_delta`).
#[derive(serde::Serialize)]
struct DeltaScaleStats {
    scale: f64,
    objects: usize,
    batch_inserts: usize,
    batch_deletes: usize,
    rounds: usize,
    rebuild_ms: f64,
    delta_apply_ms: f64,
    rebuild_per_sec: f64,
    delta_per_sec: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct DeltaStats {
    kind: String,
    level: u32,
    scales: Vec<DeltaScaleStats>,
    largest_scale_speedup: f64,
    meets_10x_floor: bool,
}

/// The `BENCH_2.json` report: every `BENCH_1.json` field, unchanged,
/// plus the `delta` section.
#[derive(serde::Serialize)]
struct Bench2 {
    bench: String,
    workload: Workload,
    statistics_build: Vec<BuildStats>,
    cold_cli: LatencyStats,
    warm_server: LatencyStats,
    batch: BatchStats,
    merge: MergeStats,
    speedup_p50: f64,
    meets_5x_floor: bool,
    delta: DeltaStats,
}

/// Measures one scale of the delta-maintenance comparison. The timed
/// incremental operation is the whole maintenance path a WAL replay or
/// tier append pays — build the signed delta from the batch, then
/// apply it — alternating a forward and an inverse batch so the
/// histogram under maintenance returns to its base state every other
/// operation (no untimed clone in the loop).
fn delta_scale(grid: Grid, scale: f64) -> DeltaScaleStats {
    let base = presets::scrc(scale).rects;
    let donor = presets::sura(scale).rects;
    let inserts: Vec<Rect> = donor.iter().copied().take(DELTA_INSERTS).collect();
    let deletes: Vec<Rect> = base.iter().copied().take(DELTA_DELETES).collect();
    let target: Vec<Rect> = base
        .iter()
        .skip(DELTA_DELETES)
        .chain(&inserts)
        .copied()
        .collect();

    // Full rebuild over the mutated dataset, DELTA_ROUNDS times.
    let t = Instant::now();
    for _ in 0..DELTA_ROUNDS {
        let h = build_histogram(HistogramKind::Gh, grid, &target);
        assert_eq!(h.dataset_len(), target.len());
    }
    let rebuild_secs = t.elapsed().as_secs_f64() / DELTA_ROUNDS as f64;

    // Incremental maintenance: forward batch, then its inverse, each a
    // full build-delta-and-apply operation (2 ops per round).
    let mut maintained = build_histogram(HistogramKind::Gh, grid, &base);
    let before = maintained.persist();
    let ops = 2 * DELTA_ROUNDS;
    let t = Instant::now();
    for _ in 0..DELTA_ROUNDS {
        let forward = HistogramDelta::build(HistogramKind::Gh, grid, &inserts, &deletes);
        maintained.apply_delta(&forward).expect("forward applies");
        let inverse = HistogramDelta::build(HistogramKind::Gh, grid, &deletes, &inserts);
        maintained.apply_delta(&inverse).expect("inverse applies");
    }
    let delta_secs = t.elapsed().as_secs_f64() / ops as f64;
    assert_eq!(
        maintained.persist(),
        before,
        "forward/inverse maintenance must return to the base state"
    );

    DeltaScaleStats {
        scale,
        objects: base.len(),
        batch_inserts: inserts.len(),
        batch_deletes: deletes.len(),
        rounds: DELTA_ROUNDS,
        rebuild_ms: rebuild_secs * 1e3,
        delta_apply_ms: delta_secs * 1e3,
        rebuild_per_sec: 1.0 / rebuild_secs,
        delta_per_sec: 1.0 / delta_secs,
        speedup: rebuild_secs / delta_secs,
    }
}

fn secs_to_us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_string()).collect()
}

fn cli(parts: &[&str]) -> sj_cli::CliOutput {
    match sj_cli::run(&argv(parts)) {
        Ok(out) => out,
        Err(e) => panic!("cli {parts:?} failed: {e:?}"),
    }
}

/// Scratch directory for the seeded CSVs and the daemon ready-file.
fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join("sjsel_bench_latency");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Boots the daemon over the CSVs on an OS-assigned port, returning the
/// address and its join handle.
fn boot(
    a_csv: &str,
    b_csv: &str,
) -> (
    String,
    std::thread::JoinHandle<Result<sj_cli::CliOutput, sj_cli::CliError>>,
) {
    let ready = scratch().join("ready.txt");
    drop(std::fs::remove_file(&ready));
    let level = LEVEL.to_string();
    let args = argv(&[
        "serve",
        a_csv,
        b_csv,
        "--level",
        &level,
        "--addr",
        "127.0.0.1:0",
        "--ready-file",
        &ready.to_string_lossy(),
    ]);
    let daemon = std::thread::spawn(move || sj_cli::run(&args));
    let mut tries = 0;
    let addr = loop {
        match std::fs::read_to_string(&ready) {
            Ok(s) if s.ends_with('\n') => break s.trim().to_string(),
            _ if tries > 1000 => panic!("server never became ready"),
            _ => {
                tries += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    };
    (addr, daemon)
}

fn main() {
    let mut out_path = "BENCH_2.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => panic!("unknown argument {other:?} (only --out is accepted)"),
        }
    }

    let dir = scratch();
    let a_csv = dir.join("bench_a.csv").to_string_lossy().into_owned();
    let b_csv = dir.join("bench_b.csv").to_string_lossy().into_owned();
    let scale = SCALE.to_string();
    let level = LEVEL.to_string();
    cli(&["generate", "scrc", "--scale", &scale, "--out", &a_csv]);
    cli(&["generate", "sura", "--scale", &scale, "--out", &b_csv]);

    // --- statistics build time -------------------------------------
    let grid = Grid::new(LEVEL, Extent::unit()).expect("level within bounds");
    let a = presets::scrc(SCALE);
    let b = presets::sura(SCALE);
    let mut statistics_build = Vec::new();
    for ds in [&a, &b] {
        let t = Instant::now();
        let h = build_histogram(HistogramKind::Gh, grid, &ds.rects);
        let build_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(h.dataset_len(), ds.rects.len());
        statistics_build.push(BuildStats {
            dataset: ds.name.clone(),
            objects: ds.rects.len(),
            build_ms,
        });
        println!(
            "build {:>6}: {} objects in {:.1} ms",
            ds.name,
            ds.rects.len(),
            build_ms
        );
    }

    // --- cold CLI: full end-to-end runs ----------------------------
    let mut cold_us = Vec::with_capacity(COLD_ITERS);
    for _ in 0..COLD_ITERS {
        let t = Instant::now();
        let out = cli(&["catalog-estimate", &a_csv, &b_csv, "--level", &level]);
        cold_us.push(secs_to_us(t.elapsed()));
        assert!(out.stdout.contains("selectivity"), "{}", out.stdout);
    }
    let cold_cli = LatencyStats::from_samples(cold_us);
    println!(
        "cold  cli: p50 {:.0} us  p99 {:.0} us  ({} iters)",
        cold_cli.p50_us, cold_cli.p99_us, cold_cli.iters
    );

    // --- warm server: persistent connection ------------------------
    let (addr, daemon) = boot(&a_csv, &b_csv);
    let mut client = Client::connect(addr.as_str()).expect("connect");
    for _ in 0..WARM_WARMUP {
        client.estimate("bench_a", "bench_b").expect("warmup");
    }
    let mut warm_us = Vec::with_capacity(WARM_ITERS);
    for _ in 0..WARM_ITERS {
        let t = Instant::now();
        let r = client.estimate("bench_a", "bench_b").expect("estimate");
        warm_us.push(secs_to_us(t.elapsed()));
        assert!(r.selectivity.is_finite());
    }
    let warm_server = LatencyStats::from_samples(warm_us);
    println!(
        "warm  srv: p50 {:.0} us  p99 {:.0} us  ({} iters)",
        warm_server.p50_us, warm_server.p99_us, warm_server.iters
    );

    // --- batch amortization: one frame for N estimates --------------
    let pairs: Vec<(String, String)> = (0..BATCH_SIZE)
        .map(|_| ("bench_a".to_string(), "bench_b".to_string()))
        .collect();
    let t = Instant::now();
    let replies = client.batch_estimate(&pairs).expect("batch");
    let batch_per_item_us = secs_to_us(t.elapsed()) / BATCH_SIZE as f64;
    assert!(replies.iter().all(Result::is_ok));
    let t = Instant::now();
    for _ in 0..BATCH_SIZE {
        client.estimate("bench_a", "bench_b").expect("single");
    }
    let single_per_item_us = secs_to_us(t.elapsed()) / BATCH_SIZE as f64;
    let batch = BatchStats {
        batch_size: BATCH_SIZE,
        batch_per_item_us,
        single_per_item_us,
        amortization: single_per_item_us / batch_per_item_us,
    };
    println!(
        "batch    : {:.1} us/item batched vs {:.1} us/item single ({:.1}x)",
        batch.batch_per_item_us, batch.single_per_item_us, batch.amortization
    );

    client.shutdown_server().expect("shutdown");
    daemon.join().expect("join").expect("daemon exit");

    // --- merge throughput: the sharded build path -------------------
    let rects = &a.rects;
    let chunk = rects.len().div_ceil(MERGE_SHARDS).max(1);
    let shards: Vec<&[sj_geo::Rect]> = rects.chunks(chunk).collect();
    let t = Instant::now();
    for _ in 0..MERGE_ROUNDS {
        let merged = build_histogram_sharded(HistogramKind::Gh, grid, &shards);
        assert_eq!(merged.dataset_len(), rects.len());
    }
    let elapsed = t.elapsed().as_secs_f64();
    let merge = MergeStats {
        shards: shards.len(),
        rects: rects.len(),
        rounds: MERGE_ROUNDS,
        sharded_build_ms: elapsed * 1e3 / MERGE_ROUNDS as f64,
        rects_per_sec: (rects.len() * MERGE_ROUNDS) as f64 / elapsed,
        merges_per_sec: (shards.len().saturating_sub(1) * MERGE_ROUNDS) as f64 / elapsed,
    };
    println!(
        "merge    : {} shards, {:.1} ms/build, {:.0} rects/s",
        merge.shards, merge.sharded_build_ms, merge.rects_per_sec
    );

    // --- delta maintenance vs full rebuild --------------------------
    let scales: Vec<DeltaScaleStats> = DELTA_SCALES
        .iter()
        .map(|&scale| {
            let s = delta_scale(grid, scale);
            println!(
                "delta    : scale {:.3} ({} objects): rebuild {:.2} ms vs \
                 delta op {:.2} ms ({:.1}x)",
                s.scale, s.objects, s.rebuild_ms, s.delta_apply_ms, s.speedup
            );
            s
        })
        .collect();
    let largest_scale_speedup = scales.last().map_or(0.0, |s| s.speedup);
    let delta = DeltaStats {
        kind: "gh".to_string(),
        level: LEVEL,
        scales,
        largest_scale_speedup,
        meets_10x_floor: largest_scale_speedup >= 10.0,
    };

    let speedup_p50 = cold_cli.p50_us / warm_server.p50_us;
    let report = Bench2 {
        bench: "latency_server".to_string(),
        workload: Workload {
            datasets: vec![a.name.clone(), b.name.clone()],
            scale: SCALE,
            level: LEVEL,
        },
        statistics_build,
        cold_cli,
        warm_server,
        batch,
        merge,
        speedup_p50,
        meets_5x_floor: speedup_p50 >= 5.0,
        delta,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    std::fs::write(&out_path, json).expect("write BENCH_2.json");
    println!(
        "\nspeedup p50: {speedup_p50:.1}x (floor 5x: {})\n\
         delta speedup at largest scale: {largest_scale_speedup:.1}x (floor 10x: {})\n\
         wrote {out_path}",
        if report.meets_5x_floor {
            "PASS"
        } else {
            "FAIL"
        },
        if report.delta.meets_10x_floor {
            "PASS"
        } else {
            "FAIL"
        }
    );
    assert!(
        report.meets_5x_floor,
        "warm-server p50 must be at least 5x below cold-CLI p50, got {speedup_p50:.2}x"
    );
    assert!(
        report.delta.meets_10x_floor,
        "delta-apply throughput must be at least 10x full-rebuild throughput \
         at the largest benchmarked scale, got {largest_scale_speedup:.2}x"
    );
}
