//! Checks the paper's headline claims end-to-end at the configured scale
//! and prints a verdict per claim (used to fill EXPERIMENTS.md):
//!
//! 1. GH error < 5 % at level 7 on all four joins, with estimation time
//!    around 1 % of the join and space ≤ ~10 % of the R-trees.
//! 2. GH errors decrease with the gridding level (no sweet spot needed).
//! 3. PH reaches ~10 % error at level 5; the parametric model (PH level
//!    0) is much worse on clustered data.
//! 4. RSWR at 10/10 gives ≤ ~10 % error with Est. Time 1 around 10 %.
//! 5. SS costs more than RS/RSWR to draw without accuracy gains.
//!
//! ```sh
//! cargo run --release -p sj-bench --bin headline_claims -- --scale 1.0
//! ```

use sj_bench::{banner, pct, HarnessConfig};
use sj_core::experiment::{fig6_row, fig7_row, HistogramScheme};
use sj_core::SamplingTechnique;

struct Verdict {
    claim: &'static str,
    detail: String,
    pass: bool,
}

fn main() {
    let cfg = HarnessConfig::from_args();
    banner("Headline claims", &cfg);
    let contexts = cfg.prepare_contexts();
    let mut verdicts: Vec<Verdict> = Vec::new();

    // Claim 1: GH at level 7 — error, est. time, space.
    {
        let mut worst_err: f64 = 0.0;
        let mut worst_time: f64 = 0.0;
        let mut worst_space: f64 = 0.0;
        let mut details = Vec::new();
        for ctx in &contexts {
            let row = fig7_row(ctx, HistogramScheme::Gh, 7);
            worst_err = worst_err.max(row.error_pct);
            if row.est_time_pct.is_finite() {
                worst_time = worst_time.max(row.est_time_pct);
            }
            // The histogram file size depends only on the level while the
            // R-tree shrinks with scale, so judge space at its full-scale
            // equivalent (space_pct scales as 1/scale).
            let space_full_scale = row.space_pct * cfg.scale;
            worst_space = worst_space.max(space_full_scale);
            details.push(format!(
                "{}: err {} time {} space@1.0 {}",
                ctx.name,
                pct(row.error_pct),
                pct(row.est_time_pct),
                pct(space_full_scale)
            ));
        }
        verdicts.push(Verdict {
            claim: "GH level 7: error < 5%, est. time ~1%, space <= ~10% (at paper scale)",
            detail: details.join(" | "),
            pass: worst_err < 5.0 && worst_time < 5.0 && worst_space < 20.0,
        });
    }

    // Claim 2: GH errors decrease with level (tail of the sweep below the
    // head on every join).
    {
        let mut pass = true;
        let mut details = Vec::new();
        for ctx in &contexts {
            let head = fig7_row(ctx, HistogramScheme::Gh, 1).error_pct;
            let mid = fig7_row(ctx, HistogramScheme::Gh, 4).error_pct;
            let tail = fig7_row(ctx, HistogramScheme::Gh, 8).error_pct;
            let monotone = tail <= mid + 0.5 && mid <= head + 0.5;
            pass &= monotone;
            details.push(format!(
                "{}: {} -> {} -> {}",
                ctx.name,
                pct(head),
                pct(mid),
                pct(tail)
            ));
        }
        verdicts.push(Verdict {
            claim: "GH error decreases with gridding level",
            detail: details.join(" | "),
            pass,
        });
    }

    // Claim 3: PH acceptable (~10%) at level 5; parametric much worse on
    // the clustered TS⋈TCB join.
    {
        let ts_tcb = contexts.iter().find(|c| c.name.contains("TS"));
        let (pass, detail) = match ts_tcb {
            Some(ctx) => {
                let ph5 = fig7_row(ctx, HistogramScheme::Ph, 5).error_pct;
                let ph0 = fig7_row(ctx, HistogramScheme::Ph, 0).error_pct;
                (
                    ph5 < 15.0 && ph0 > 2.0 * ph5.max(1.0),
                    format!(
                        "PH level5 err {} vs parametric (level0) {}",
                        pct(ph5),
                        pct(ph0)
                    ),
                )
            }
            None => (true, "skipped (TS join not selected)".to_string()),
        };
        verdicts.push(Verdict {
            claim: "PH acceptable at level 5; parametric model much worse on clustered data",
            detail,
            pass,
        });
    }

    // Claim 4: RSWR 10/10 — error within ~10%, Est. Time 1 around 10%.
    {
        let mut details = Vec::new();
        let mut pass = true;
        for ctx in &contexts {
            let row = fig6_row(ctx, SamplingTechnique::RandomWithReplacement, 10.0, 10.0);
            pass &= row.error_pct < 20.0;
            details.push(format!(
                "{}: err {} est.time1 {}",
                ctx.name,
                pct(row.error_pct),
                pct(row.est_time_1_pct)
            ));
        }
        verdicts.push(Verdict {
            claim: "RSWR 10/10: error <= ~10%, Est. Time 1 around 10%",
            detail: details.join(" | "),
            pass,
        });
    }

    // Claim 5: SS pays a drawing premium over RS at the same accuracy
    // class (compare total estimation time at 10/10).
    {
        let mut details = Vec::new();
        let mut pass = true;
        for ctx in &contexts {
            let ss = fig6_row(ctx, SamplingTechnique::Sorted, 10.0, 10.0);
            let rs = fig6_row(ctx, SamplingTechnique::Regular, 10.0, 10.0);
            pass &= ss.est_time_2_pct >= rs.est_time_2_pct;
            details.push(format!(
                "{}: SS {} vs RS {}",
                ctx.name,
                pct(ss.est_time_2_pct),
                pct(rs.est_time_2_pct)
            ));
        }
        verdicts.push(Verdict {
            claim: "Sorted sampling costs more than RS for no accuracy gain",
            detail: details.join(" | "),
            pass,
        });
    }

    println!();
    let mut all_pass = true;
    for v in &verdicts {
        all_pass &= v.pass;
        println!("[{}] {}", if v.pass { "PASS" } else { "FAIL" }, v.claim);
        println!("       {}", v.detail);
    }
    println!(
        "\n{} of {} claims hold at scale {}",
        verdicts.iter().filter(|v| v.pass).count(),
        verdicts.len(),
        cfg.scale
    );
    std::process::exit(i32::from(!all_pass));
}
