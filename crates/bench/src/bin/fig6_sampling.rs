//! Regenerates **Figure 6** (paper Section 4.3): sampling-based
//! estimation across the nine sample-size combinations and three
//! techniques, for each of the four joins.
//!
//! Per bar the paper plots estimation error, *Est. Time 1* (R-trees on
//! the base datasets not available: the denominator is R-tree build +
//! join) and *Est. Time 2* (R-trees available: denominator is the join
//! alone).
//!
//! ```sh
//! cargo run --release -p sj-bench --bin fig6_sampling -- --scale 1.0
//! ```

use sj_bench::{banner, pct, render_table, HarnessConfig};
use sj_core::experiment::fig6_rows_par;

fn main() {
    let cfg = HarnessConfig::from_args();
    banner("Figure 6: sampling techniques", &cfg);

    let contexts = cfg.prepare_contexts();
    let mut all_rows = Vec::new();
    for ctx in &contexts {
        println!(
            "--- {} ---  (N1 = {}, N2 = {}, actual pairs = {}, selectivity = {:.3e})",
            ctx.name,
            ctx.left.len(),
            ctx.right.len(),
            ctx.baseline.pairs,
            ctx.baseline.selectivity
        );
        let rows = fig6_rows_par(ctx, cfg.parallelism);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.combo.clone(),
                    r.technique.clone(),
                    format!("{:.3e}", r.estimated),
                    pct(r.error_pct),
                    pct(r.est_time_1_pct),
                    pct(r.est_time_2_pct),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "combo",
                    "technique",
                    "estimate",
                    "error",
                    "est.time 1",
                    "est.time 2"
                ],
                &table
            )
        );
        all_rows.extend(rows);
    }
    cfg.write_json("fig6_sampling.json", &all_rows);
}
