//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Each binary accepts:
//!
//! * `--scale <f64>` — dataset scale relative to the paper cardinalities
//!   (default 0.2; pass `1.0` for the full-size run recorded in
//!   EXPERIMENTS.md).
//! * `--levels <a>..<b>` — histogram gridding levels (default `0..9`,
//!   the paper's sweep).
//! * `--out <dir>` — directory for machine-readable JSON results
//!   (default `results/`).
//! * `--join <name>` — restrict to one join (`ts-tcb`, `cas-car`,
//!   `sp-spg`, `scrc-sura`).
//! * `--threads <n>` — worker threads for context preparation and the
//!   experiment runners (default: available parallelism).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sj_core::experiment::JoinContext;
use sj_core::presets::{self, PaperJoin};
use sj_core::{parallel_map, Parallelism};
use std::fmt::Write as _;
use std::ops::RangeInclusive;
use std::path::PathBuf;

/// Top-level sections of `BENCH_5.json`, in serialization order.
///
/// `BENCH_<n>.json` naming rule: each PR that adds a perf section bumps
/// `<n>`, and the new file carries **every prior section forward
/// unchanged** so reports stay comparable release over release.
/// `BENCH_3.json` is the one gap on disk: the mutation-path PR pointed
/// the bench binary at that name (adding `mutation_path`) but never
/// committed the artifact, and the next PR bumped the default to
/// `BENCH_4.json` (adding `sync_layer`) — so the number is skipped in
/// the repo root but not in the schema lineage.
///
/// docs/KERNELS.md documents every section; a docs-sync test in this
/// crate diffs its section table against this list, and the bench
/// binary asserts at run time that the JSON it writes has exactly these
/// top-level keys in this order.
pub const BENCH5_SECTIONS: [&str; 13] = [
    "bench",
    "workload",
    "statistics_build",
    "cold_cli",
    "warm_server",
    "batch",
    "merge",
    "speedup_p50",
    "meets_5x_floor",
    "delta",
    "mutation_path",
    "sync_layer",
    "kernels",
];

/// Parsed command-line configuration shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Dataset scale (1.0 = paper cardinalities).
    pub scale: f64,
    /// Gridding levels for histogram sweeps.
    pub levels: RangeInclusive<u32>,
    /// Output directory for JSON results.
    pub out_dir: PathBuf,
    /// Joins to run.
    pub joins: Vec<PaperJoin>,
    /// Worker threads for context preparation and experiment runners.
    pub parallelism: Parallelism,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            scale: 0.2,
            levels: 0..=9,
            out_dir: PathBuf::from("results"),
            joins: presets::ALL_JOINS.to_vec(),
            parallelism: Parallelism::default(),
        }
    }
}

impl HarnessConfig {
    /// Parses `std::env::args`, exiting with a usage message on error.
    #[must_use]
    pub fn from_args() -> Self {
        let mut cfg = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let need_value = |i: usize| {
                args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                    eprintln!("missing value for {}", args[i]);
                    std::process::exit(2);
                })
            };
            match args[i].as_str() {
                "--scale" => {
                    cfg.scale = need_value(i).parse().unwrap_or_else(|e| {
                        eprintln!("bad --scale: {e}");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                "--levels" => {
                    let v = need_value(i);
                    let Some((a, b)) = v.split_once("..") else {
                        eprintln!("bad --levels (expected a..b): {v}");
                        std::process::exit(2);
                    };
                    let lo: u32 = a.parse().unwrap_or(0);
                    let hi: u32 = b.trim_start_matches('=').parse().unwrap_or(9);
                    cfg.levels = lo..=hi;
                    i += 2;
                }
                "--out" => {
                    cfg.out_dir = PathBuf::from(need_value(i));
                    i += 2;
                }
                "--join" => {
                    cfg.joins = vec![match need_value(i) {
                        "ts-tcb" => PaperJoin::TsTcb,
                        "cas-car" => PaperJoin::CasCar,
                        "sp-spg" => PaperJoin::SpSpg,
                        "scrc-sura" => PaperJoin::ScrcSura,
                        other => {
                            eprintln!("unknown join {other}");
                            std::process::exit(2);
                        }
                    }];
                    i += 2;
                }
                "--threads" => {
                    let n: usize = need_value(i).parse().unwrap_or_else(|e| {
                        eprintln!("bad --threads: {e}");
                        std::process::exit(2);
                    });
                    cfg.parallelism = Parallelism::try_new(n).unwrap_or_else(|e| {
                        eprintln!("bad --threads: {e}");
                        std::process::exit(2);
                    });
                    i += 2;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--scale F] [--levels A..B] [--out DIR] \
                         [--join ts-tcb|cas-car|sp-spg|scrc-sura] [--threads N]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other}");
                    std::process::exit(2);
                }
            }
        }
        cfg
    }

    /// Prepares the configured joins in parallel (each needs a full exact
    /// join, the expensive part of the harness).
    #[must_use]
    pub fn prepare_contexts(&self) -> Vec<JoinContext> {
        let scale = self.scale;
        parallel_map(self.joins.clone(), self.parallelism, move |join| {
            let (a, b) = join.datasets(scale);
            JoinContext::prepare(join.name(), a, b)
        })
    }

    /// Writes a serializable value as pretty JSON under the output dir.
    pub fn write_json<T: serde::Serialize>(&self, name: &str, value: &T) {
        std::fs::create_dir_all(&self.out_dir).expect("create output dir");
        let path = self.out_dir.join(name);
        let json = serde_json::to_string_pretty(value).expect("serialize results");
        std::fs::write(&path, json).expect("write results file");
        println!("\nwrote {}", path.display());
    }
}

/// Renders an aligned text table: `headers` then `rows`, every row the
/// same arity as the headers.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            let pad = widths[i] - cell.chars().count();
            if i > 0 {
                out.push_str("  ");
            }
            // Right-align numeric-looking cells, left-align labels.
            if i != 0
                && cell
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || c == '-')
            {
                let _ = write!(out, "{}{}", " ".repeat(pad), cell);
            } else {
                let _ = write!(out, "{}{}", cell, " ".repeat(pad));
            }
        }
        out.push('\n');
    };
    let headers_owned: Vec<String> = headers.iter().map(|s| (*s).to_string()).collect();
    fmt_row(&mut out, &headers_owned);
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
    );
    for row in rows {
        fmt_row(&mut out, row);
    }
    out
}

/// Formats a percentage for tables: `n/a` for NaN, sensible precision
/// otherwise.
#[must_use]
pub fn pct(v: f64) -> String {
    if v.is_nan() {
        "n/a".to_string()
    } else if v == f64::INFINITY {
        "inf".to_string()
    } else if v >= 100.0 {
        format!("{v:.0}%")
    } else if v >= 1.0 {
        format!("{v:.1}%")
    } else {
        format!("{v:.3}%")
    }
}

/// Prints the standard harness banner.
pub fn banner(title: &str, cfg: &HarnessConfig) {
    println!("=== {title} ===");
    println!(
        "scale {} (paper = 1.0) | joins: {} | threads: {}",
        cfg.scale,
        cfg.joins
            .iter()
            .map(|j| j.name())
            .collect::<Vec<_>>()
            .join(", "),
        cfg.parallelism.threads()
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["join", "error"],
            &[
                vec!["TS with TCB".to_string(), "1.2%".to_string()],
                vec!["x".to_string(), "10.0%".to_string()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("join"));
        assert!(lines[2].contains("TS with TCB"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(f64::NAN), "n/a");
        assert_eq!(pct(0.123), "0.123%");
        assert_eq!(pct(12.34), "12.3%");
        assert_eq!(pct(1234.0), "1234%");
        assert_eq!(pct(f64::INFINITY), "inf");
    }

    #[test]
    fn default_config() {
        let cfg = HarnessConfig::default();
        assert_eq!(cfg.joins.len(), 4);
        assert_eq!(cfg.levels, 0..=9);
    }

    #[test]
    fn prepare_contexts_preserves_order() {
        let cfg = HarnessConfig {
            scale: 0.002,
            ..Default::default()
        };
        let ctxs = cfg.prepare_contexts();
        let names: Vec<&str> = ctxs.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "TS with TCB",
                "CAS with CAR",
                "SP with SPG",
                "SCRC with SURA"
            ]
        );
    }
}
