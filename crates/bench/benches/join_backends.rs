//! Microbenchmarks of the exact-join backends: the timing baseline all of
//! the paper's relative metrics stand on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sj_core::{presets, RTree, RTreeConfig};
use std::hint::black_box;

fn bench_joins(c: &mut Criterion) {
    let (a, b) = presets::PaperJoin::ScrcSura.datasets(0.05);
    let ta = RTree::bulk_load_str(RTreeConfig::default(), &a.rects);
    let tb = RTree::bulk_load_str(RTreeConfig::default(), &b.rects);

    let mut g = c.benchmark_group("exact_join");
    g.sample_size(20);
    g.bench_function("rtree_join_scrc_sura_5pct", |bench| {
        bench.iter(|| black_box(sj_core::join_count(&ta, &tb)));
    });
    g.bench_function("plane_sweep_scrc_sura_5pct", |bench| {
        bench.iter(|| black_box(sj_core::sweep_join_count(&a.rects, &b.rects)));
    });
    g.finish();
}

fn bench_builds(c: &mut Criterion) {
    let (a, _) = presets::PaperJoin::TsTcb.datasets(0.05);
    let mut g = c.benchmark_group("rtree_build");
    g.sample_size(10);
    g.bench_function("str_bulk_load_ts_5pct", |bench| {
        bench.iter(|| black_box(RTree::bulk_load_str(RTreeConfig::default(), &a.rects)));
    });
    g.bench_function("hilbert_bulk_load_ts_5pct", |bench| {
        bench.iter(|| black_box(RTree::bulk_load_hilbert(RTreeConfig::default(), &a.rects)));
    });
    g.bench_function("dynamic_insert_ts_5pct", |bench| {
        bench.iter_batched(
            || a.rects.clone(),
            |rects| {
                let mut t = RTree::with_defaults();
                for (i, r) in rects.iter().enumerate() {
                    t.insert(*r, i as u64);
                }
                black_box(t)
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_joins, bench_builds);
criterion_main!(benches);
