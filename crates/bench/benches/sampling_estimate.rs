//! Cost of sampling-based estimation end-to-end (draw + index + join),
//! per technique and sample size — the numerator of the paper's Est. Time
//! metrics in Figure 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_core::{presets, Extent, JoinBackend, SamplingEstimator, SamplingTechnique};
use std::hint::black_box;

fn bench_sampling(c: &mut Criterion) {
    let (a, b) = presets::PaperJoin::ScrcSura.datasets(0.1);
    let extent = Extent::unit();

    let mut g = c.benchmark_group("sampling_estimate_scrc_sura_10pct");
    g.sample_size(10);
    for percent in [1.0f64, 10.0] {
        for technique in [
            SamplingTechnique::RandomWithReplacement,
            SamplingTechnique::Regular,
            SamplingTechnique::Sorted,
        ] {
            let id = format!("{}_{percent}pct", technique.name());
            g.bench_with_input(
                BenchmarkId::new(id, percent as u32),
                &percent,
                |bench, &p| {
                    let est = SamplingEstimator::new(technique, p, p);
                    bench.iter(|| black_box(est.estimate(&a.rects, &b.rects, &extent)));
                },
            );
        }
    }
    // Backend comparison at a fixed size: R-tree join vs plane sweep on
    // the samples (the paper argues for the R-tree join).
    for backend in [JoinBackend::RTree, JoinBackend::PlaneSweep] {
        let label = format!("backend_{backend:?}_10pct");
        g.bench_function(&label, |bench| {
            let est = SamplingEstimator {
                backend,
                ..SamplingEstimator::new(SamplingTechnique::Regular, 10.0, 10.0)
            };
            bench.iter(|| black_box(est.estimate(&a.rects, &b.rects, &extent)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
