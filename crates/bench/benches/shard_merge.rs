//! Shard-and-merge build cost for every histogram family.
//!
//! Builds a histogram over `k` rectangle shards (each shard built
//! independently, then merged) and compares against the one-shot serial
//! build. The merged result is asserted byte-identical to the serial
//! build — the mergeable-sketch contract the `SpatialHistogram` trait
//! guarantees — so the benchmark doubles as an end-to-end check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_core::{build_histogram, build_histogram_sharded, presets, Extent, Grid, HistogramKind};
use sj_geo::Rect;
use std::hint::black_box;

fn bench_shard_merge(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let ts = presets::ts(if smoke { 0.01 } else { 0.05 });
    let grid = Grid::new(6, Extent::unit()).expect("level 6 grid");

    let mut g = c.benchmark_group("shard_merge_ts");
    g.sample_size(10);
    for kind in HistogramKind::ALL {
        // Correctness first: the merged build must equal the serial one.
        let serial = build_histogram(kind, grid, &ts.rects);
        for shards in [2usize, 8] {
            let pieces = chunked(&ts.rects, shards);
            let merged = build_histogram_sharded(kind, grid, &pieces);
            assert_eq!(
                merged.to_bytes(),
                serial.to_bytes(),
                "{kind}: merge of {shards} shards must be byte-identical to serial"
            );
        }

        g.bench_with_input(BenchmarkId::new("serial", kind), &kind, |b, &kind| {
            b.iter(|| black_box(build_histogram(kind, grid, &ts.rects)));
        });
        for shards in [2usize, 8] {
            g.bench_with_input(
                BenchmarkId::new(format!("{shards}_shards"), kind),
                &kind,
                |b, &kind| {
                    b.iter(|| {
                        let pieces = chunked(&ts.rects, shards);
                        black_box(build_histogram_sharded(kind, grid, &pieces))
                    });
                },
            );
        }
    }
    g.finish();
}

fn chunked(rects: &[Rect], shards: usize) -> Vec<&[Rect]> {
    let chunk = rects.len().div_ceil(shards).max(1);
    rects.chunks(chunk).collect()
}

criterion_group!(benches, bench_shard_merge);
criterion_main!(benches);
