//! Estimation-query cost from prebuilt histogram files: the paper's
//! *Estimation Time* metric in absolute terms. This is the per-query cost
//! a query optimizer pays; the paper reports it at ~1% of the join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_core::{presets, Extent, GhBasicHistogram, GhHistogram, Grid, PhHistogram};
use std::hint::black_box;

fn bench_estimate(c: &mut Criterion) {
    let (a, b) = presets::PaperJoin::TsTcb.datasets(0.05);
    let extent = Extent::unit();

    let mut g = c.benchmark_group("histogram_estimate_ts_tcb_5pct");
    for level in [3u32, 6, 9] {
        let grid = Grid::new(level, extent).expect("level in range");
        let (gha, ghb) = (
            GhHistogram::build(grid, &a.rects),
            GhHistogram::build(grid, &b.rects),
        );
        let (gba, gbb) = (
            GhBasicHistogram::build(grid, &a.rects),
            GhBasicHistogram::build(grid, &b.rects),
        );
        let (pha, phb) = (
            PhHistogram::build(grid, &a.rects),
            PhHistogram::build(grid, &b.rects),
        );

        g.bench_with_input(BenchmarkId::new("gh_revised", level), &level, |bench, _| {
            bench.iter(|| black_box(gha.estimate(&ghb).expect("same grid")));
        });
        g.bench_with_input(BenchmarkId::new("gh_basic", level), &level, |bench, _| {
            bench.iter(|| black_box(gba.estimate(&gbb).expect("same grid")));
        });
        g.bench_with_input(BenchmarkId::new("ph", level), &level, |bench, _| {
            bench.iter(|| black_box(pha.estimate(&phb).expect("same grid")));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_estimate);
criterion_main!(benches);
