//! Histogram-file construction cost: the paper's *Building Time* metric
//! in absolute terms, per scheme and level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_core::{presets, Extent, GhBasicHistogram, GhHistogram, Grid, PhHistogram};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let ts = presets::ts(0.05);
    let extent = Extent::unit();

    let mut g = c.benchmark_group("histogram_build_ts_5pct");
    g.sample_size(10);
    for level in [3u32, 6, 9] {
        let grid = Grid::new(level, extent).expect("level in range");
        g.bench_with_input(BenchmarkId::new("gh_revised", level), &grid, |b, grid| {
            b.iter(|| black_box(GhHistogram::build(*grid, &ts.rects)));
        });
        g.bench_with_input(BenchmarkId::new("gh_basic", level), &grid, |b, grid| {
            b.iter(|| black_box(GhBasicHistogram::build(*grid, &ts.rects)));
        });
        g.bench_with_input(BenchmarkId::new("ph", level), &grid, |b, grid| {
            b.iter(|| black_box(PhHistogram::build(*grid, &ts.rects)));
        });
    }
    g.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let ts = presets::ts(0.05);
    let grid = Grid::new(7, Extent::unit()).expect("level in range");
    let gh = GhHistogram::build(grid, &ts.rects);
    let bytes = gh.to_bytes();

    let mut g = c.benchmark_group("histogram_file_io");
    g.bench_function("gh_to_bytes_level7", |b| {
        b.iter(|| black_box(gh.to_bytes()));
    });
    g.bench_function("gh_from_bytes_level7", |b| {
        b.iter(|| black_box(GhHistogram::from_bytes(&bytes).expect("valid")));
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_serialization);
criterion_main!(benches);
