//! Thread-scaling benchmarks for the parallel execution layer.
//!
//! The headline measurement is the acceptance gate for the parallel
//! join: a 100k × 100k exact R-tree join (SCRC ⋈ SURA at scale 1.0)
//! must be at least 2× faster at 4 threads than at 1. The run prints
//! an explicit speedup line alongside the per-thread-count timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_core::{presets, RTree, RTreeConfig};
use std::hint::black_box;
use std::time::Instant;

fn bench_join_scaling(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let scale = if smoke { 0.01 } else { 1.0 };
    let (a, b) = presets::PaperJoin::ScrcSura.datasets(scale);
    let ta = RTree::bulk_load_str(RTreeConfig::default(), &a.rects);
    let tb = RTree::bulk_load_str(RTreeConfig::default(), &b.rects);

    let mut g = c.benchmark_group("join_scaling");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("scrc_sura_100k", threads),
            &threads,
            |bench, &threads| {
                bench.iter(|| black_box(sj_core::join_count_parallel(&ta, &tb, threads)));
            },
        );
    }
    g.finish();

    // The acceptance measurement: best-of-3 at 1 thread vs 4 threads.
    let time_it = |threads: usize| {
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                black_box(sj_core::join_count_parallel(&ta, &tb, threads));
                t0.elapsed()
            })
            .min()
            .expect("three timed runs")
    };
    let serial = time_it(1);
    let four = time_it(4);
    let speedup = serial.as_secs_f64() / four.as_secs_f64().max(f64::MIN_POSITIVE);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "join_scaling/speedup: {}x at 4 threads ({serial:?} serial vs {four:?}) on \
         {}x{} rects, {cores} host cores",
        (speedup * 100.0).round() / 100.0,
        a.rects.len(),
        b.rects.len(),
    );
    // The 2x gate is only meaningful on hosts that can actually run four
    // workers, and only at full scale — soft-skip (warn) otherwise.
    if cores >= 4 && !smoke {
        assert!(
            speedup >= 2.0,
            "join_scaling/speedup: expected >= 2x at 4 threads on a {cores}-core host, got {speedup:.2}x"
        );
    } else {
        println!(
            "join_scaling/speedup: skipping the 2x acceptance gate \
             ({cores} host core(s), smoke={smoke}); measured {speedup:.2}x"
        );
    }
}

fn bench_histogram_scaling(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let scale = if smoke { 0.01 } else { 0.5 };
    let (a, _) = presets::PaperJoin::TsTcb.datasets(scale);
    let grid = sj_core::Grid::new(6, a.extent).expect("level 6 grid");

    let mut g = c.benchmark_group("histogram_scaling");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("gh_build_ts", threads),
            &threads,
            |bench, &threads| {
                bench.iter(|| {
                    black_box(sj_core::GhHistogram::build_parallel(
                        grid, &a.rects, threads,
                    ))
                });
            },
        );
    }
    g.finish();
}

fn bench_sweep_scaling(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let scale = if smoke { 0.01 } else { 0.2 };
    let (a, b) = presets::PaperJoin::ScrcSura.datasets(scale);

    let mut g = c.benchmark_group("sweep_scaling");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("plane_sweep_scrc_sura", threads),
            &threads,
            |bench, &threads| {
                bench.iter(|| {
                    black_box(sj_core::sweep_join_count_parallel(
                        &a.rects, &b.rects, threads,
                    ))
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_join_scaling,
    bench_histogram_scaling,
    bench_sweep_scaling
);
criterion_main!(benches);
