//! Old-vs-new agreement: the SoA kernel estimate path must be
//! **bit-identical** to the retained scalar reference loops across the
//! verify-merge scenario matrix (all gridded families, levels {3, 6},
//! every ordered dataset pair including self-joins and an empty
//! dataset). This is the pin for DESIGN.md §16's bit-identity argument;
//! CI runs it as its own named step.

use sj_datagen::presets::verify_scenarios;
use sj_geo::{Extent, Rect};
use sj_histogram::kernel::{GhBasicView, GhView, PhView};
use sj_histogram::{
    GhBasicHistogram, GhHistogram, Grid, HistogramError, PhHistogram, SelectivityEstimate,
    SpatialHistogram,
};

const SCALE: f64 = 0.5;
const LEVELS: [u32; 2] = [3, 6];

fn bits(e: SelectivityEstimate) -> (u64, u64) {
    (e.selectivity.to_bits(), e.pairs.to_bits())
}

/// The scenario matrix: both verify presets plus the empty dataset.
fn scenario_rects() -> Vec<(String, Vec<Rect>)> {
    let mut out: Vec<(String, Vec<Rect>)> = verify_scenarios(SCALE)
        .into_iter()
        .map(|d| (d.name, d.rects))
        .collect();
    out.push(("empty".to_string(), Vec::new()));
    out
}

fn unit_grid(level: u32) -> Grid {
    Grid::new(level, Extent::unit()).unwrap()
}

#[test]
fn ph_kernel_is_bit_identical_to_scalar() {
    for level in LEVELS {
        let grid = unit_grid(level);
        let hists: Vec<(String, PhHistogram)> = scenario_rects()
            .into_iter()
            .map(|(name, rects)| (name, PhHistogram::build(grid, &rects)))
            .collect();
        for (na, ha) in &hists {
            for (nb, hb) in &hists {
                let ctx = format!("level {level}, {na} x {nb}");
                assert_eq!(
                    bits(ha.estimate(hb).unwrap()),
                    bits(ha.estimate_scalar(hb).unwrap()),
                    "corrected estimate diverged: {ctx}"
                );
                assert_eq!(
                    bits(ha.estimate_uncorrected(hb).unwrap()),
                    bits(ha.estimate_uncorrected_scalar(hb).unwrap()),
                    "uncorrected estimate diverged: {ctx}"
                );
                // The trait path dispatches through the same kernel.
                assert_eq!(
                    bits(ha.estimate_join(hb).unwrap()),
                    bits(ha.estimate_scalar(hb).unwrap()),
                    "trait path diverged: {ctx}"
                );
                // Reused views (the warm-serving pattern) agree too.
                let (va, vb) = (PhView::new(ha), PhView::new(hb));
                assert_eq!(
                    bits(va.estimate(&vb).unwrap()),
                    bits(ha.estimate_scalar(hb).unwrap()),
                    "view path diverged: {ctx}"
                );
            }
        }
    }
}

#[test]
fn gh_revised_kernel_is_bit_identical_to_scalar() {
    for level in LEVELS {
        let grid = unit_grid(level);
        let hists: Vec<(String, GhHistogram)> = scenario_rects()
            .into_iter()
            .map(|(name, rects)| (name, GhHistogram::build(grid, &rects)))
            .collect();
        for (na, ha) in &hists {
            for (nb, hb) in &hists {
                let ctx = format!("level {level}, {na} x {nb}");
                assert_eq!(
                    ha.intersection_points(hb).unwrap().to_bits(),
                    ha.intersection_points_scalar(hb).unwrap().to_bits(),
                    "Eq. 5 total diverged: {ctx}"
                );
                assert_eq!(
                    bits(ha.estimate(hb).unwrap()),
                    bits(ha.estimate_scalar(hb).unwrap()),
                    "estimate diverged: {ctx}"
                );
                assert_eq!(
                    bits(ha.estimate_join(hb).unwrap()),
                    bits(ha.estimate_scalar(hb).unwrap()),
                    "trait path diverged: {ctx}"
                );
                let (va, vb) = (GhView::new(ha), GhView::new(hb));
                assert_eq!(
                    va.intersection_points(&vb).unwrap().to_bits(),
                    ha.intersection_points_scalar(hb).unwrap().to_bits(),
                    "view path diverged: {ctx}"
                );
            }
        }
    }
}

#[test]
fn gh_basic_kernel_is_bit_identical_to_scalar() {
    for level in LEVELS {
        let grid = unit_grid(level);
        let hists: Vec<(String, GhBasicHistogram)> = scenario_rects()
            .into_iter()
            .map(|(name, rects)| (name, GhBasicHistogram::build(grid, &rects)))
            .collect();
        for (na, ha) in &hists {
            for (nb, hb) in &hists {
                let ctx = format!("level {level}, {na} x {nb}");
                assert_eq!(
                    ha.intersection_points(hb).unwrap().to_bits(),
                    ha.intersection_points_scalar(hb).unwrap().to_bits(),
                    "Eq. 4 total diverged: {ctx}"
                );
                assert_eq!(
                    bits(ha.estimate(hb).unwrap()),
                    bits(ha.estimate_scalar(hb).unwrap()),
                    "estimate diverged: {ctx}"
                );
                assert_eq!(
                    bits(ha.estimate_join(hb).unwrap()),
                    bits(ha.estimate_scalar(hb).unwrap()),
                    "trait path diverged: {ctx}"
                );
                let (va, vb) = (GhBasicView::new(ha), GhBasicView::new(hb));
                assert_eq!(
                    va.intersection_points(&vb).unwrap().to_bits(),
                    ha.intersection_points_scalar(hb).unwrap().to_bits(),
                    "view path diverged: {ctx}"
                );
            }
        }
    }
}

#[test]
fn kernel_path_reports_the_same_grid_mismatch() {
    let rects = vec![Rect::new(0.1, 0.1, 0.2, 0.2)];
    let a = PhHistogram::build(unit_grid(3), &rects);
    let b = PhHistogram::build(unit_grid(6), &rects);
    for result in [a.estimate(&b), a.estimate_scalar(&b)] {
        assert!(matches!(
            result,
            Err(HistogramError::GridMismatch {
                left_level: 3,
                right_level: 6,
            })
        ));
    }
    let ga = GhHistogram::build(unit_grid(3), &rects);
    let gb = GhHistogram::build(unit_grid(6), &rects);
    assert!(matches!(
        ga.intersection_points(&gb),
        Err(HistogramError::GridMismatch { .. })
    ));
    let ba = GhBasicHistogram::build(unit_grid(3), &rects);
    let bb = GhBasicHistogram::build(unit_grid(6), &rects);
    assert!(matches!(
        ba.intersection_points(&bb),
        Err(HistogramError::GridMismatch { .. })
    ));
}
