use std::fmt;

/// Which structural section of a persisted histogram failed to decode.
///
/// Reported inside [`HistogramError::Corrupt`] so callers (and the CLI's
/// JSON provenance) can tell an unreadable envelope from a failed
/// checksum or a malformed family payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptSection {
    /// The outer envelope: magic, version, kind tag or length framing.
    Envelope,
    /// The CRC32 trailer did not match the envelope contents.
    Checksum,
    /// A family payload header (magic, grid level, extent, cardinality).
    Header,
    /// The per-cell statistics payload.
    Payload,
}

impl CorruptSection {
    /// Stable lowercase name, used in error messages and provenance.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CorruptSection::Envelope => "envelope",
            CorruptSection::Checksum => "checksum",
            CorruptSection::Header => "header",
            CorruptSection::Payload => "payload",
        }
    }
}

impl fmt::Display for CorruptSection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors produced by histogram construction, estimation and
/// (de)serialization.
///
/// `#[non_exhaustive]`: future PRs add failure modes (e.g. resource
/// limits) without a semver break; downstream matches keep a `_` arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HistogramError {
    /// The two histograms being combined were built on different grids
    /// (level and extent must match exactly).
    GridMismatch {
        /// Level of the left histogram.
        left_level: u32,
        /// Level of the right histogram.
        right_level: u32,
    },
    /// The two histograms being combined belong to different families
    /// (e.g. merging a PH into a GH).
    KindMismatch {
        /// Family of the left histogram.
        left: crate::HistogramKind,
        /// Family of the right histogram.
        right: crate::HistogramKind,
    },
    /// A histogram file failed to decode.
    Corrupt {
        /// The structural section that failed.
        section: CorruptSection,
        /// What exactly was wrong with it.
        detail: String,
    },
    /// The requested grid level is above [`crate::Grid::MAX_LEVEL`].
    LevelTooLarge(u32),
    /// Applying a signed delta would push a statistic outside its
    /// representable range — e.g. a delete batch covering objects the
    /// histogram never counted would drive a per-cell counter below
    /// zero. The application is rejected atomically (the histogram is
    /// left untouched), never wrapped or debug-panicked.
    DeltaOutOfRange {
        /// Field name of the out-of-range statistic.
        statistic: &'static str,
        /// Row-major index of the offending cell; `None` for scalars.
        cell: Option<usize>,
        /// The value the update would have produced.
        value: i128,
    },
}

impl HistogramError {
    /// Builds a [`HistogramError::Corrupt`] for `section`.
    #[must_use]
    pub fn corrupt(section: CorruptSection, detail: impl Into<String>) -> Self {
        HistogramError::Corrupt {
            section,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistogramError::GridMismatch {
                left_level,
                right_level,
            } => write!(
                f,
                "histogram grids are incompatible (levels {left_level} vs {right_level}, \
                 or differing extents)"
            ),
            HistogramError::KindMismatch { left, right } => write!(
                f,
                "histograms do not share a common scheme ({} vs {})",
                left.name(),
                right.name()
            ),
            HistogramError::Corrupt { section, detail } => {
                write!(f, "corrupt histogram file ({section} section): {detail}")
            }
            HistogramError::LevelTooLarge(l) => write!(
                f,
                "grid level {l} exceeds the maximum of {}",
                crate::Grid::MAX_LEVEL
            ),
            HistogramError::DeltaOutOfRange {
                statistic,
                cell,
                value,
            } => match cell {
                Some(index) => write!(
                    f,
                    "delta application rejected: statistic `{statistic}` at cell index \
                     {index} would become {value}, outside its representable range"
                ),
                None => write!(
                    f,
                    "delta application rejected: scalar statistic `{statistic}` would \
                     become {value}, outside its representable range"
                ),
            },
        }
    }
}

impl std::error::Error for HistogramError {}
