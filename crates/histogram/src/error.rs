use std::fmt;

/// Errors produced by histogram construction, estimation and
/// (de)serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum HistogramError {
    /// The two histograms being combined were built on different grids
    /// (level and extent must match exactly).
    GridMismatch {
        /// Level of the left histogram.
        left_level: u32,
        /// Level of the right histogram.
        right_level: u32,
    },
    /// The two histograms being combined belong to different families
    /// (e.g. merging a PH into a GH).
    KindMismatch {
        /// Family of the left histogram.
        left: crate::HistogramKind,
        /// Family of the right histogram.
        right: crate::HistogramKind,
    },
    /// A histogram file failed to decode.
    Corrupt(String),
    /// The requested grid level is above [`crate::Grid::MAX_LEVEL`].
    LevelTooLarge(u32),
}

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistogramError::GridMismatch {
                left_level,
                right_level,
            } => write!(
                f,
                "histogram grids are incompatible (levels {left_level} vs {right_level}, \
                 or differing extents)"
            ),
            HistogramError::KindMismatch { left, right } => write!(
                f,
                "histograms do not share a common scheme ({} vs {})",
                left.name(),
                right.name()
            ),
            HistogramError::Corrupt(msg) => write!(f, "corrupt histogram file: {msg}"),
            HistogramError::LevelTooLarge(l) => write!(
                f,
                "grid level {l} exceeds the maximum of {}",
                crate::Grid::MAX_LEVEL
            ),
        }
    }
}

impl std::error::Error for HistogramError {}
