//! The [`SpatialHistogram`] trait: one mergeable-sketch interface over
//! all four histogram families, plus versioned persistence envelopes.
//!
//! Every family's per-cell statistics are pure sums over the input MBRs,
//! so any two histograms of the same kind on the same grid can be merged
//! by adding their statistics — and because the fractional masses are
//! accumulated exactly ([`crate::mass`]), merging *any* sharding of a
//! dataset (row bands or rectangle ranges) reproduces the serial build
//! bit-for-bit. The trait packages that contract behind one object-safe
//! interface so the estimator, catalog and CLI layers can treat the
//! families uniformly.
//!
//! Persistence wraps each family's native byte format in a small
//! versioned envelope so a single [`load_histogram`] call can revive any
//! kind; [`persist_json`] offers the same envelope as a JSON document for
//! text-based pipelines. The current (version 2) binary envelope is
//! length-framed and checksummed:
//!
//! ```text
//! magic u32 | version u32 | kind tag u32 | payload_len u64 | payload | crc32 u32
//! ```
//!
//! The trailing CRC32 covers every preceding byte, so truncation and
//! bit-flips surface as typed [`HistogramError::Corrupt`] values instead
//! of panics or silently-wrong statistics. Version 1 envelopes (no frame,
//! no checksum) still load through a legacy fallback.
//!
//! [`persist_json`]: SpatialHistogram::persist_json

use crate::band::RowBanded;
use crate::crc::crc32;
use crate::delta::HistogramDelta;
use crate::{
    CorruptSection, EulerHistogram, GhBasicHistogram, GhHistogram, Grid, HistogramError,
    PhHistogram, SelectivityEstimate,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sj_geo::Rect;
use std::any::Any;

/// Envelope magic for persisted histograms of any kind.
const ENVELOPE_MAGIC: u32 = 0x534a_5348; // "SJSH"
/// Envelope format version; bump on incompatible layout changes.
/// Version 2 added the payload length frame and the trailing CRC32.
const ENVELOPE_VERSION: u32 = 2;
/// The pre-checksum envelope layout (magic, version, tag, payload).
const LEGACY_ENVELOPE_VERSION: u32 = 1;
/// `format` field value of the JSON envelope.
const JSON_FORMAT: &str = "sjsel-histogram";

/// Identifies one of the four histogram families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HistogramKind {
    /// Parametric Histogram (paper Section 3.1.2).
    Ph,
    /// Basic Geometric Histogram (paper Eq. 4).
    GhBasic,
    /// Revised Geometric Histogram — the paper's headline scheme (Eq. 5).
    Gh,
    /// Euler histogram (exact cell-resolution counting).
    Euler,
}

impl HistogramKind {
    /// All four kinds, in tag order.
    pub const ALL: [HistogramKind; 4] = [
        HistogramKind::Ph,
        HistogramKind::GhBasic,
        HistogramKind::Gh,
        HistogramKind::Euler,
    ];

    /// Stable lowercase name, matching the CLI `--kind` spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HistogramKind::Ph => "ph",
            HistogramKind::GhBasic => "gh-basic",
            HistogramKind::Gh => "gh",
            HistogramKind::Euler => "euler",
        }
    }

    /// Stable numeric tag used in the persistence envelope.
    #[must_use]
    pub fn tag(self) -> u32 {
        match self {
            HistogramKind::Ph => 1,
            HistogramKind::GhBasic => 2,
            HistogramKind::Gh => 3,
            HistogramKind::Euler => 4,
        }
    }

    /// Inverse of [`Self::tag`].
    #[must_use]
    pub fn from_tag(tag: u32) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.tag() == tag)
    }
}

impl std::fmt::Display for HistogramKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for HistogramKind {
    type Err = HistogramError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| {
                HistogramError::corrupt(
                    CorruptSection::Envelope,
                    format!("unknown histogram kind {s:?}"),
                )
            })
    }
}

/// A grid histogram usable as a mergeable sketch: buildable from MBRs,
/// mergeable with another same-kind/same-grid histogram, able to estimate
/// join selectivity against its own kind, and persistable.
///
/// Implemented by [`PhHistogram`], [`GhBasicHistogram`], [`GhHistogram`]
/// and [`EulerHistogram`]. Merging shard builds is *bit-for-bit* equal to
/// building serially over the concatenated input — see the row-band driver in `band.rs`.
///
/// # Examples
///
/// Build two shard histograms, merge them, and check the result is
/// byte-identical to one serial build over all the data — then round-trip
/// it through the persistence envelope and estimate a join:
///
/// ```
/// use sj_geo::{Extent, Rect};
/// use sj_histogram::{load_histogram, Grid, GhHistogram, SpatialHistogram};
///
/// let grid = Grid::new(4, Extent::unit())?;
/// let shard_a = vec![Rect::new(0.10, 0.10, 0.22, 0.18)];
/// let shard_b = vec![Rect::new(0.15, 0.05, 0.20, 0.30)];
/// let all: Vec<Rect> = shard_a.iter().chain(&shard_b).copied().collect();
///
/// // Shard-and-merge equals the serial build, bit for bit.
/// let mut merged = GhHistogram::build_from(grid, &shard_a);
/// merged.merge(&GhHistogram::build_from(grid, &shard_b))?;
/// let serial = GhHistogram::build_from(grid, &all);
/// assert_eq!(merged.to_bytes(), serial.to_bytes());
///
/// // Persistence round trip through the versioned envelope.
/// let revived = load_histogram(&merged.persist())?;
/// assert_eq!(revived.kind(), merged.kind());
/// assert_eq!(revived.to_bytes(), merged.to_bytes());
///
/// // The two crossing MBRs intersect: the join estimate sees them.
/// let est = revived.estimate_join(&serial)?;
/// assert!(est.pairs > 0.0);
/// # Ok::<(), sj_histogram::HistogramError>(())
/// ```
pub trait SpatialHistogram: std::fmt::Debug + Send + Sync {
    /// Which family this histogram belongs to.
    fn kind(&self) -> HistogramKind;

    /// The grid the histogram was built on.
    fn grid(&self) -> Grid;

    /// Cardinality of the summarized dataset.
    fn dataset_len(&self) -> usize;

    /// Size of the native histogram file in bytes — the paper's space
    /// cost.
    fn space_bytes(&self) -> usize;

    /// Serializes the family's native (un-enveloped) byte format.
    fn to_bytes(&self) -> Bytes;

    /// Adds `other`'s statistics into `self`.
    ///
    /// # Errors
    /// [`HistogramError::KindMismatch`] when `other` is a different
    /// family, [`HistogramError::GridMismatch`] when the grids differ.
    fn merge(&mut self, other: &dyn SpatialHistogram) -> Result<(), HistogramError>;

    /// Estimates the join selectivity against `other`.
    ///
    /// # Errors
    /// [`HistogramError::KindMismatch`] when `other` is a different
    /// family, [`HistogramError::GridMismatch`] when the grids differ.
    fn estimate_join(
        &self,
        other: &dyn SpatialHistogram,
    ) -> Result<SelectivityEstimate, HistogramError>;

    /// Upcast for kind-checked downcasting (used by [`Self::merge`] and
    /// [`Self::estimate_join`] implementations).
    fn as_any(&self) -> &dyn Any;

    /// Clones into a boxed trait object.
    fn clone_box(&self) -> Box<dyn SpatialHistogram>;

    /// Applies a signed batch delta in place, exactly: after this
    /// returns `Ok`, the histogram is byte-identical to a fresh build
    /// over the mutated dataset (`build(D ∪ Δ⁺ ∖ Δ⁻)`).
    ///
    /// Application is atomic — every statistic update is range-checked
    /// before any is written, so on error the histogram is untouched.
    ///
    /// # Errors
    /// [`HistogramError::KindMismatch`] / [`HistogramError::GridMismatch`]
    /// when the delta was built for a different family or grid;
    /// [`HistogramError::DeltaOutOfRange`] when an update would push a
    /// counter or scalar outside its representable range (e.g. a
    /// delete batch covering objects this histogram never counted);
    /// [`HistogramError::Corrupt`] when a hand-forged delta's statistic
    /// shape does not match the family.
    fn apply_delta(&mut self, delta: &HistogramDelta) -> Result<(), HistogramError>;

    /// Builds the histogram of `rects` on `grid` (serial).
    #[must_use]
    fn build_from(grid: Grid, rects: &[Rect]) -> Self
    where
        Self: Sized;

    /// Builds the signed delta of an insert/delete batch for this
    /// family on `grid` — the statistic-wise difference
    /// `build(inserts) − build(deletes)`, suitable for
    /// [`Self::apply_delta`].
    #[must_use]
    fn build_delta(grid: Grid, inserts: &[Rect], deletes: &[Rect]) -> HistogramDelta
    where
        Self: Sized;

    /// Serializes into the versioned kind-tagged envelope decodable by
    /// [`load_histogram`], regardless of family: a 20-byte header (magic,
    /// version, kind tag, payload length), the native payload, and a
    /// trailing CRC32 over everything before it.
    fn persist(&self) -> Bytes {
        let payload = self.to_bytes();
        let mut buf = BytesMut::with_capacity(24 + payload.len());
        buf.put_u32_le(ENVELOPE_MAGIC);
        buf.put_u32_le(ENVELOPE_VERSION);
        buf.put_u32_le(self.kind().tag());
        buf.put_u64_le(payload.len() as u64);
        buf.put_slice(&payload);
        let checksum = crc32(&buf);
        buf.put_u32_le(checksum);
        buf.freeze()
    }

    /// Serializes into a versioned JSON envelope decodable by
    /// [`load_histogram_json`]. The native payload travels hex-encoded.
    fn persist_json(&self) -> String {
        format!(
            "{{\"format\":\"{JSON_FORMAT}\",\"version\":{ENVELOPE_VERSION},\
             \"kind\":\"{}\",\"payload_hex\":\"{}\"}}",
            self.kind().name(),
            hex_encode(&self.to_bytes())
        )
    }
}

impl Clone for Box<dyn SpatialHistogram> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Downcasts `other` to `H`, reporting a kind mismatch otherwise.
fn same_kind<H: SpatialHistogram + 'static>(
    left: HistogramKind,
    other: &dyn SpatialHistogram,
) -> Result<&H, HistogramError> {
    other
        .as_any()
        .downcast_ref::<H>()
        .ok_or(HistogramError::KindMismatch {
            left,
            right: other.kind(),
        })
}

/// Shared [`SpatialHistogram::merge`] implementation: kind check, grid
/// check, then the family's exact statistic addition.
fn merge_impl<H>(this: &mut H, other: &dyn SpatialHistogram) -> Result<(), HistogramError>
where
    H: SpatialHistogram + RowBanded + 'static,
{
    let kind = this.kind();
    let other = same_kind::<H>(kind, other)?;
    let (left, right) = (this.grid(), SpatialHistogram::grid(other));
    if !left.compatible(&right) {
        return Err(HistogramError::GridMismatch {
            left_level: left.level(),
            right_level: right.level(),
        });
    }
    this.merge_same_grid(other);
    Ok(())
}

macro_rules! impl_spatial_histogram {
    ($ty:ty, $kind:expr) => {
        impl SpatialHistogram for $ty {
            fn kind(&self) -> HistogramKind {
                $kind
            }

            fn grid(&self) -> Grid {
                <$ty>::grid(self)
            }

            fn dataset_len(&self) -> usize {
                <$ty>::dataset_len(self)
            }

            fn space_bytes(&self) -> usize {
                self.size_bytes()
            }

            fn to_bytes(&self) -> Bytes {
                <$ty>::to_bytes(self)
            }

            fn merge(&mut self, other: &dyn SpatialHistogram) -> Result<(), HistogramError> {
                merge_impl(self, other)
            }

            fn estimate_join(
                &self,
                other: &dyn SpatialHistogram,
            ) -> Result<SelectivityEstimate, HistogramError> {
                let other = same_kind::<$ty>($kind, other)?;
                self.estimate(other)
            }

            fn as_any(&self) -> &dyn Any {
                self
            }

            fn clone_box(&self) -> Box<dyn SpatialHistogram> {
                Box::new(self.clone())
            }

            fn apply_delta(&mut self, delta: &HistogramDelta) -> Result<(), HistogramError> {
                crate::delta::apply_impl(self, delta)
            }

            fn build_from(grid: Grid, rects: &[Rect]) -> Self {
                <$ty>::build(grid, rects)
            }

            fn build_delta(grid: Grid, inserts: &[Rect], deletes: &[Rect]) -> HistogramDelta {
                crate::delta::build_impl::<$ty>($kind, grid, inserts, deletes, 1)
            }
        }
    };
}

impl_spatial_histogram!(PhHistogram, HistogramKind::Ph);
impl_spatial_histogram!(GhBasicHistogram, HistogramKind::GhBasic);
impl_spatial_histogram!(GhHistogram, HistogramKind::Gh);
impl_spatial_histogram!(EulerHistogram, HistogramKind::Euler);

/// Builds a boxed histogram of the given `kind` (serial).
#[must_use]
pub fn build_histogram(
    kind: HistogramKind,
    grid: Grid,
    rects: &[Rect],
) -> Box<dyn SpatialHistogram> {
    build_histogram_parallel(kind, grid, rects, 1)
}

/// Builds a boxed histogram of the given `kind`, banding grid rows across
/// `threads` workers; bit-identical to the serial build for every thread
/// count.
#[must_use]
pub fn build_histogram_parallel(
    kind: HistogramKind,
    grid: Grid,
    rects: &[Rect],
    threads: usize,
) -> Box<dyn SpatialHistogram> {
    match kind {
        HistogramKind::Ph => Box::new(PhHistogram::build_parallel(grid, rects, threads)),
        HistogramKind::GhBasic => Box::new(GhBasicHistogram::build_parallel(grid, rects, threads)),
        HistogramKind::Gh => Box::new(GhHistogram::build_parallel(grid, rects, threads)),
        HistogramKind::Euler => Box::new(EulerHistogram::build_parallel(grid, rects, threads)),
    }
}

/// Builds each rectangle shard independently and merges the shard
/// histograms — bit-identical to one serial build over the concatenated
/// shards (exact accumulation makes the merge order irrelevant). An empty
/// shard list yields an empty histogram.
#[must_use]
pub fn build_histogram_sharded(
    kind: HistogramKind,
    grid: Grid,
    shards: &[&[Rect]],
) -> Box<dyn SpatialHistogram> {
    fn sharded<H: RowBanded + SpatialHistogram + Sized>(grid: Grid, shards: &[&[Rect]]) -> H {
        let mut acc = H::build_from(grid, shards.first().copied().unwrap_or(&[]));
        for shard in shards.iter().skip(1) {
            // Same kind and grid by construction, so the checked `merge`
            // entry point is unnecessary (and its error path unreachable).
            acc.merge_same_grid(&H::build_from(grid, shard));
        }
        acc
    }
    match kind {
        HistogramKind::Ph => Box::new(sharded::<PhHistogram>(grid, shards)),
        HistogramKind::GhBasic => Box::new(sharded::<GhBasicHistogram>(grid, shards)),
        HistogramKind::Gh => Box::new(sharded::<GhHistogram>(grid, shards)),
        HistogramKind::Euler => Box::new(sharded::<EulerHistogram>(grid, shards)),
    }
}

/// Decodes the payload of a known kind into a boxed histogram.
fn load_payload(
    kind: HistogramKind,
    data: &[u8],
) -> Result<Box<dyn SpatialHistogram>, HistogramError> {
    Ok(match kind {
        HistogramKind::Ph => Box::new(PhHistogram::from_bytes(data)?),
        HistogramKind::GhBasic => Box::new(GhBasicHistogram::from_bytes(data)?),
        HistogramKind::Gh => Box::new(GhHistogram::from_bytes(data)?),
        HistogramKind::Euler => Box::new(EulerHistogram::from_bytes(data)?),
    })
}

/// Decodes a histogram of any kind from the envelope written by
/// [`SpatialHistogram::persist`]. Version 2 envelopes are verified
/// against their length frame and trailing CRC32 before the payload is
/// touched; version 1 (pre-checksum) envelopes load through the legacy
/// path with no integrity check beyond the payload's own structure.
///
/// # Errors
/// Returns [`HistogramError::Corrupt`] on malformed input, a bad version,
/// an unknown kind tag, a length-frame mismatch, or a failed checksum.
pub fn load_histogram(full: &[u8]) -> Result<Box<dyn SpatialHistogram>, HistogramError> {
    let envelope = |detail: String| HistogramError::corrupt(CorruptSection::Envelope, detail);
    let mut data = full;
    if data.remaining() < 12 {
        return Err(envelope(format!(
            "truncated envelope: {} bytes, need at least 12",
            full.len()
        )));
    }
    if data.get_u32_le() != ENVELOPE_MAGIC {
        return Err(envelope("bad envelope magic".to_string()));
    }
    let version = data.get_u32_le();
    let tag = data.get_u32_le();
    let kind = HistogramKind::from_tag(tag)
        .ok_or_else(|| envelope(format!("unknown histogram kind tag {tag}")))?;
    match version {
        LEGACY_ENVELOPE_VERSION => load_payload(kind, data),
        ENVELOPE_VERSION => {
            if data.remaining() < 12 {
                return Err(envelope(format!(
                    "truncated envelope: {} bytes, need at least 24",
                    full.len()
                )));
            }
            let payload_len = data.get_u64_le();
            let framed_total = payload_len
                .checked_add(24)
                .ok_or_else(|| envelope(format!("absurd payload length {payload_len}")))?;
            if framed_total != full.len() as u64 {
                return Err(envelope(format!(
                    "length frame mismatch: header says {payload_len} payload bytes \
                     but the envelope holds {}",
                    full.len()
                )));
            }
            // framed_total == full.len() >= 24 here, so the trailer and
            // the 20-byte header prefix are both in range; the fallible
            // accessors keep the decoder panic-free regardless.
            let tail_at = full.len().saturating_sub(4);
            let (body, tail) = full.split_at(tail_at);
            let stored = u32::from_le_bytes(tail.try_into().unwrap_or([0; 4]));
            let computed = crc32(body);
            if stored != computed {
                return Err(HistogramError::corrupt(
                    CorruptSection::Checksum,
                    format!("CRC32 mismatch: stored {stored:#010x}, computed {computed:#010x}"),
                ));
            }
            let payload = body
                .get(20..)
                .ok_or_else(|| envelope("envelope shorter than its fixed header".to_string()))?;
            load_payload(kind, payload)
        }
        other => Err(envelope(format!("unsupported envelope version {other}"))),
    }
}

/// Decodes a histogram of any kind from the JSON envelope written by
/// [`SpatialHistogram::persist_json`].
///
/// # Errors
/// Returns [`HistogramError::Corrupt`] on malformed input, a bad version,
/// or an unknown kind name.
pub fn load_histogram_json(json: &str) -> Result<Box<dyn SpatialHistogram>, HistogramError> {
    let corrupt = |m: &str| HistogramError::corrupt(CorruptSection::Envelope, m);
    let format = json_string_field(json, "format").ok_or_else(|| corrupt("missing format"))?;
    if format != JSON_FORMAT {
        return Err(HistogramError::corrupt(
            CorruptSection::Envelope,
            format!("unrecognized format {format:?}"),
        ));
    }
    let version = json_u64_field(json, "version").ok_or_else(|| corrupt("missing version"))?;
    if version != u64::from(ENVELOPE_VERSION) && version != u64::from(LEGACY_ENVELOPE_VERSION) {
        return Err(HistogramError::corrupt(
            CorruptSection::Envelope,
            format!("unsupported envelope version {version}"),
        ));
    }
    let kind: HistogramKind = json_string_field(json, "kind")
        .ok_or_else(|| corrupt("missing kind"))?
        .parse()?;
    let payload = hex_decode(
        json_string_field(json, "payload_hex").ok_or_else(|| corrupt("missing payload_hex"))?,
    )?;
    load_payload(kind, &payload)
}

/// Extracts the string value of `"field":"…"` from the flat JSON envelope
/// (the values this format writes never contain escapes).
fn json_string_field<'a>(json: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\":\"");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    Some(&rest[..rest.find('"')?])
}

/// Extracts the numeric value of `"field":N` from the flat JSON envelope.
fn json_u64_field(json: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let start = json.find(&needle)? + needle.len();
    let digits: String = json[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Lowercase hex encoding of `data`.
fn hex_encode(data: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(data.len() * 2);
    for b in data {
        out.push(DIGITS[usize::from(b >> 4)] as char);
        out.push(DIGITS[usize::from(b & 0x0f)] as char);
    }
    out
}

/// Inverse of [`hex_encode`].
fn hex_decode(s: &str) -> Result<Vec<u8>, HistogramError> {
    let corrupt = |m: &str| HistogramError::corrupt(CorruptSection::Envelope, m);
    if !s.len().is_multiple_of(2) || !s.is_ascii() {
        return Err(corrupt("payload_hex must be an even-length hex string"));
    }
    s.as_bytes()
        .chunks(2)
        .map(|pair| {
            std::str::from_utf8(pair)
                .ok()
                .and_then(|digits| u8::from_str_radix(digits, 16).ok())
                .ok_or_else(|| corrupt("invalid hex digit in payload_hex"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geo::Extent;

    fn unit_grid(level: u32) -> Grid {
        Grid::new(level, Extent::unit()).unwrap()
    }

    fn uniform(n: usize, seed: u64, side: f64) -> Vec<Rect> {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0 - side);
                let y = rng.random_range(0.0..1.0 - side);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..side),
                    y + rng.random_range(0.0..side),
                )
            })
            .collect()
    }

    #[test]
    fn kind_names_tags_roundtrip() {
        for kind in HistogramKind::ALL {
            assert_eq!(kind.name().parse::<HistogramKind>().unwrap(), kind);
            assert_eq!(HistogramKind::from_tag(kind.tag()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert!("nope".parse::<HistogramKind>().is_err());
        assert_eq!(HistogramKind::from_tag(0), None);
        assert_eq!(HistogramKind::from_tag(99), None);
    }

    #[test]
    fn envelope_roundtrip_every_kind() {
        let a = uniform(200, 140, 0.06);
        let b = uniform(250, 141, 0.05);
        let g = unit_grid(4);
        for kind in HistogramKind::ALL {
            let ha = build_histogram(kind, g, &a);
            let hb = build_histogram(kind, g, &b);
            let expected = ha.estimate_join(hb.as_ref()).unwrap();

            let back = load_histogram(&ha.persist()).unwrap();
            assert_eq!(back.kind(), kind);
            assert_eq!(back.to_bytes(), ha.to_bytes(), "{kind}: lossless");
            assert_eq!(
                back.estimate_join(hb.as_ref()).unwrap(),
                expected,
                "{kind}: identical estimates after reload"
            );

            let back = load_histogram_json(&ha.persist_json()).unwrap();
            assert_eq!(back.kind(), kind);
            assert_eq!(back.to_bytes(), ha.to_bytes(), "{kind}: JSON lossless");
        }
    }

    #[test]
    fn envelope_rejects_corruption() {
        let h = build_histogram(HistogramKind::Gh, unit_grid(2), &uniform(30, 142, 0.1));
        let bytes = h.persist();
        assert!(load_histogram(&bytes[..8]).is_err());
        let mut bad_magic = bytes.to_vec();
        bad_magic[0] ^= 1;
        assert!(load_histogram(&bad_magic).is_err());
        let mut bad_version = bytes.to_vec();
        bad_version[4] = 99;
        assert!(load_histogram(&bad_version).is_err());
        let mut bad_tag = bytes.to_vec();
        bad_tag[8] = 99;
        assert!(load_histogram(&bad_tag).is_err());
        // A bare family file is not an envelope.
        assert!(load_histogram(&h.to_bytes()).is_err());
        // A flipped payload byte fails the checksum with a typed error.
        let mut bad_payload = bytes.to_vec();
        let mid = bad_payload.len() / 2;
        bad_payload[mid] ^= 0x10;
        assert!(matches!(
            load_histogram(&bad_payload),
            Err(HistogramError::Corrupt {
                section: CorruptSection::Checksum,
                ..
            })
        ));
        // Trailing garbage breaks the length frame.
        let mut padded = bytes.to_vec();
        padded.push(0);
        assert!(matches!(
            load_histogram(&padded),
            Err(HistogramError::Corrupt {
                section: CorruptSection::Envelope,
                ..
            })
        ));
        // JSON with the wrong format marker or broken hex.
        assert!(load_histogram_json("{\"format\":\"other\"}").is_err());
        let json = h.persist_json();
        assert!(load_histogram_json(&json.replace("sjsel-histogram", "x")).is_err());
        assert!(load_histogram_json(&json.replace("\"version\":2", "\"version\":9")).is_err());
    }

    /// Version-1 envelopes (no length frame, no CRC) predate this layout
    /// and must keep loading through the legacy fallback.
    #[test]
    fn legacy_v1_envelope_still_loads() {
        let a = uniform(120, 146, 0.07);
        for kind in HistogramKind::ALL {
            let h = build_histogram(kind, unit_grid(3), &a);
            let payload = h.to_bytes();
            let mut v1 = BytesMut::with_capacity(12 + payload.len());
            v1.put_u32_le(ENVELOPE_MAGIC);
            v1.put_u32_le(LEGACY_ENVELOPE_VERSION);
            v1.put_u32_le(kind.tag());
            v1.put_slice(&payload);
            let back = load_histogram(&v1).unwrap();
            assert_eq!(back.kind(), kind);
            assert_eq!(back.to_bytes(), payload, "{kind}: legacy load lossless");
        }
    }

    #[test]
    fn merge_rejects_kind_and_grid_mismatch() {
        let rects = uniform(50, 143, 0.08);
        let g = unit_grid(3);
        let mut gh = build_histogram(HistogramKind::Gh, g, &rects);
        let ph = build_histogram(HistogramKind::Ph, g, &rects);
        let err = gh.merge(ph.as_ref()).unwrap_err();
        assert!(
            err.to_string().contains("common scheme"),
            "kind mismatch message: {err}"
        );
        assert!(matches!(err, HistogramError::KindMismatch { .. }));
        let other_grid = build_histogram(HistogramKind::Gh, unit_grid(4), &rects);
        assert!(matches!(
            gh.merge(other_grid.as_ref()),
            Err(HistogramError::GridMismatch { .. })
        ));
        assert!(matches!(
            gh.estimate_join(ph.as_ref()),
            Err(HistogramError::KindMismatch { .. })
        ));
    }

    #[test]
    fn sharded_build_matches_serial_for_every_kind() {
        let rects = uniform(400, 144, 0.07);
        let g = unit_grid(4);
        for kind in HistogramKind::ALL {
            let serial = build_histogram(kind, g, &rects);
            for pieces in [1usize, 2, 3, 8] {
                let chunk = rects.len().div_ceil(pieces);
                let shards: Vec<&[Rect]> = rects.chunks(chunk).collect();
                let merged = build_histogram_sharded(kind, g, &shards);
                assert_eq!(
                    merged.to_bytes(),
                    serial.to_bytes(),
                    "{kind} sharded into {pieces} must be byte-identical"
                );
                assert_eq!(merged.dataset_len(), rects.len());
            }
        }
    }

    #[test]
    fn boxed_clone_is_independent() {
        let rects = uniform(60, 145, 0.08);
        let g = unit_grid(3);
        let original = build_histogram(HistogramKind::Euler, g, &rects);
        let mut copy = original.clone();
        copy.merge(original.as_ref()).unwrap();
        assert_eq!(copy.dataset_len(), 2 * original.dataset_len());
        assert_eq!(original.dataset_len(), rects.len(), "original untouched");
    }
}
