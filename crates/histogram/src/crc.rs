//! Hand-rolled CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`)
//! used by the histogram persistence envelope, the server wire frames
//! and the statistics store. The workspace vendors no checksum crate,
//! and it needs only the one classic variant, so the 256-entry table is
//! built at compile time right here — this module is the workspace's
//! single CRC32 implementation, re-exported as `sj_core::crc` (the
//! self-contained copy in `sj_lint::fingerprint` is deliberate: the
//! checker of this code must not depend on it).

/// Reflected CRC32 polynomial (IEEE 802.3 / zlib / PNG).
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        // sj-lint: allow(cast, i < 256 fits u32; u32::try_from is not const)
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 checksum of `data` (init `0xFFFF_FFFF`, final XOR, reflected).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = usize::from((crc as u8) ^ byte);
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical check value of the IEEE CRC32 variant.
    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    /// All-ones and all-zeros blocks exercise the table's extremes; the
    /// expected values are cross-checked against zlib's `crc32()`.
    #[test]
    fn saturated_blocks() {
        assert_eq!(crc32(&[0xFF]), 0xFF00_0000);
        assert_eq!(crc32(&[0xFF; 32]), 0xFF6C_AB0B);
        assert_eq!(crc32(&[0x00; 32]), 0x190A_55AD);
    }

    /// Incremental property the envelope relies on: a CRC mismatch on a
    /// prefix never cancels out when more bytes are appended unchanged.
    #[test]
    fn prefix_corruption_persists() {
        let clean = b"header|payload|trailer".to_vec();
        let mut dirty = clean.clone();
        dirty[0] ^= 0x80;
        assert_ne!(crc32(&clean), crc32(&dirty));
        let mut clean_ext = clean;
        let mut dirty_ext = dirty;
        clean_ext.extend_from_slice(b"....");
        dirty_ext.extend_from_slice(b"....");
        assert_ne!(crc32(&clean_ext), crc32(&dirty_ext));
    }

    #[test]
    fn sensitive_to_any_single_bit() {
        let base = b"selectivity".to_vec();
        let reference = crc32(&base);
        for pos in 0..base.len() {
            for bit in 0..8u8 {
                let mut flipped = base.clone();
                flipped[pos] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {pos}:{bit}");
            }
        }
    }
}
