//! Cell-level divergence localization between two same-kind histograms.
//!
//! Byte comparison of two persisted histograms answers *whether* a
//! shard-and-merge build reproduced the serial build, but not *where* it
//! went wrong. This module walks the per-family statistics in their
//! serialization order and reports the first place two histograms
//! disagree — the statistic's name and, for per-cell statistics, the grid
//! cell — so `sj-lint verify-merge` (and any other conformance harness)
//! can print "cell (3, 7) of `cov_x` differs" instead of "bytes differ".
//!
//! The statistic names match the struct fields of the four families:
//!
//! * PH — scalars `n`, `span_total`, `span_rects`; per-cell `num`,
//!   `num_x` (counts) and `cov`, `xsum`, `ysum`, `cov_x`, `xsum_x`,
//!   `ysum_x` (exact fixed-point masses). Paper Table 1.
//! * basic GH — scalar `n`; per-cell counts `c`, `i`, `v`, `h`
//!   (paper Eq. 4).
//! * revised GH — scalar `n`; per-cell `c` (count) and `o`, `h`, `v`
//!   (masses; paper Table 2 / Eq. 5).
//! * Euler — scalar `n`; per-face counts `faces`, `v_edges`, `h_edges`,
//!   `vertices` (each face class has its own grid dimensions).
//!
//! Fixed-point masses are reported in raw 2⁻⁷⁵ units (exact) with an
//! approximate decimal rendering alongside.

use crate::mass::Mass;
use crate::{
    EulerHistogram, GhBasicHistogram, GhHistogram, HistogramError, HistogramKind, PhHistogram,
    SpatialHistogram,
};

/// Grid location of a diverging per-cell statistic.
///
/// For PH/GH statistics `col`/`row` are grid-cell coordinates. For the
/// Euler face classes they index that class's own lattice (e.g. a
/// `v_edges` entry at `(col, row)` is the interior edge between cells
/// `(col, row)` and `(col + 1, row)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellLocation {
    /// Row-major index into the statistic's array.
    pub index: usize,
    /// Column (x) coordinate within the statistic's lattice.
    pub col: u32,
    /// Row (y) coordinate within the statistic's lattice.
    pub row: u32,
}

impl std::fmt::Display for CellLocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell ({}, {}) [index {}]",
            self.col, self.row, self.index
        )
    }
}

/// The first difference found between two same-kind, same-grid
/// histograms, localized to a statistic and (when per-cell) a grid cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Field name of the differing statistic (see the module docs for
    /// the per-family name lists).
    pub statistic: &'static str,
    /// The diverging cell; `None` for dataset-level scalars such as `n`.
    pub cell: Option<CellLocation>,
    /// The left histogram's value, rendered exactly (raw 2⁻⁷⁵ units for
    /// fixed-point masses).
    pub left: String,
    /// The right histogram's value, rendered like `left`.
    pub right: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.cell {
            Some(cell) => write!(
                f,
                "statistic `{}` at {}: {} != {}",
                self.statistic, cell, self.left, self.right
            ),
            None => write!(
                f,
                "scalar statistic `{}`: {} != {}",
                self.statistic, self.left, self.right
            ),
        }
    }
}

/// Per-cell values of one named statistic.
pub(crate) enum CellValues<'a> {
    /// Integer counters.
    Counts(&'a [u32]),
    /// Exact fixed-point masses.
    Masses(&'a [Mass]),
}

/// One named per-cell statistic array, with the width of its row-major
/// lattice (cells per row) so indices decompose into `(col, row)`.
pub(crate) struct StatArray<'a> {
    pub(crate) name: &'static str,
    pub(crate) width: usize,
    pub(crate) values: CellValues<'a>,
}

/// Introspection hooks each family implements next to its field
/// definitions: the mergeable statistics in serialization order.
pub(crate) trait StatInspect {
    /// Dataset-level scalar statistics, in serialization order.
    fn scalar_stats(&self) -> Vec<(&'static str, u64)>;
    /// Per-cell statistic arrays, in serialization order.
    fn cell_stats(&self) -> Vec<StatArray<'_>>;
}

/// Exact rendering of a mass: raw fixed-point units plus an approximate
/// decimal value.
fn render_mass(m: Mass) -> String {
    format!("{}·2^-75 (≈{:.6e})", m.raw_units(), m.to_f64())
}

/// `(col, row)` of `index` in a row-major lattice `width` cells wide.
fn locate(index: usize, width: usize) -> CellLocation {
    let (col, row) = if width == 0 {
        (0, 0)
    } else {
        (index % width, index / width)
    };
    CellLocation {
        index,
        col: u32::try_from(col).unwrap_or(u32::MAX),
        row: u32::try_from(row).unwrap_or(u32::MAX),
    }
}

/// First divergence between two same-family histograms, walking scalars
/// then per-cell arrays in serialization order.
fn compare<H: StatInspect>(left: &H, right: &H) -> Option<Divergence> {
    for ((name, lv), (_, rv)) in left.scalar_stats().iter().zip(&right.scalar_stats()) {
        if lv != rv {
            return Some(Divergence {
                statistic: name,
                cell: None,
                left: lv.to_string(),
                right: rv.to_string(),
            });
        }
    }
    for (ls, rs) in left.cell_stats().iter().zip(&right.cell_stats()) {
        match (&ls.values, &rs.values) {
            (CellValues::Counts(lc), CellValues::Counts(rc)) => {
                if let Some((i, (a, b))) = lc
                    .iter()
                    .zip(rc.iter())
                    .enumerate()
                    .find(|(_, (a, b))| a != b)
                {
                    return Some(Divergence {
                        statistic: ls.name,
                        cell: Some(locate(i, ls.width)),
                        left: a.to_string(),
                        right: b.to_string(),
                    });
                }
            }
            (CellValues::Masses(lm), CellValues::Masses(rm)) => {
                if let Some((i, (a, b))) = lm
                    .iter()
                    .zip(rm.iter())
                    .enumerate()
                    .find(|(_, (a, b))| a != b)
                {
                    return Some(Divergence {
                        statistic: ls.name,
                        cell: Some(locate(i, ls.width)),
                        left: render_mass(*a),
                        right: render_mass(*b),
                    });
                }
            }
            // Mixed representations cannot happen for same-kind
            // histograms; treat it as a whole-array divergence anyway
            // rather than silently reporting equality.
            _ => {
                return Some(Divergence {
                    statistic: ls.name,
                    cell: None,
                    left: "count array".to_string(),
                    right: "mass array".to_string(),
                });
            }
        }
    }
    None
}

/// Downcasts both sides to `H` and compares their statistics.
fn compare_as<H: StatInspect + 'static>(
    left: &dyn SpatialHistogram,
    right: &dyn SpatialHistogram,
) -> Option<Divergence> {
    match (
        left.as_any().downcast_ref::<H>(),
        right.as_any().downcast_ref::<H>(),
    ) {
        (Some(l), Some(r)) => compare(l, r),
        // Unreachable after the kind check in `first_divergence`; report
        // nothing rather than panic.
        _ => None,
    }
}

/// Finds the first statistic (and cell, for per-cell statistics) where
/// two same-kind, same-grid histograms differ, in serialization order.
/// Returns `Ok(None)` when every statistic matches — which, for these
/// families, implies the persisted bytes are identical too.
///
/// # Errors
/// [`HistogramError::KindMismatch`] when the histograms belong to
/// different families, [`HistogramError::GridMismatch`] when their grids
/// differ (different-shaped statistics cannot be compared cell-wise).
///
/// # Examples
/// ```
/// use sj_geo::{Extent, Rect};
/// use sj_histogram::{build_histogram, first_divergence, Grid, HistogramKind};
///
/// let grid = Grid::new(2, Extent::unit())?;
/// let a = vec![Rect::new(0.10, 0.10, 0.15, 0.15)]; // cell (0, 0)
/// let b = vec![Rect::new(0.60, 0.60, 0.65, 0.65)]; // cell (2, 2)
/// let ha = build_histogram(HistogramKind::GhBasic, grid, &a);
/// let hb = build_histogram(HistogramKind::GhBasic, grid, &b);
///
/// // A histogram never diverges from itself.
/// assert!(first_divergence(ha.as_ref(), ha.as_ref())?.is_none());
///
/// // Different data: the first differing statistic is localized.
/// let d = first_divergence(ha.as_ref(), hb.as_ref())?.unwrap();
/// assert_eq!(d.statistic, "c");
/// let cell = d.cell.unwrap();
/// assert_eq!((cell.col, cell.row), (0, 0));
/// # Ok::<(), sj_histogram::HistogramError>(())
/// ```
pub fn first_divergence(
    left: &dyn SpatialHistogram,
    right: &dyn SpatialHistogram,
) -> Result<Option<Divergence>, HistogramError> {
    if left.kind() != right.kind() {
        return Err(HistogramError::KindMismatch {
            left: left.kind(),
            right: right.kind(),
        });
    }
    let (lg, rg) = (left.grid(), right.grid());
    if !lg.compatible(&rg) {
        return Err(HistogramError::GridMismatch {
            left_level: lg.level(),
            right_level: rg.level(),
        });
    }
    Ok(match left.kind() {
        HistogramKind::Ph => compare_as::<PhHistogram>(left, right),
        HistogramKind::GhBasic => compare_as::<GhBasicHistogram>(left, right),
        HistogramKind::Gh => compare_as::<GhHistogram>(left, right),
        HistogramKind::Euler => compare_as::<EulerHistogram>(left, right),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_histogram, Grid};
    use sj_geo::{Extent, Rect};

    fn unit_grid(level: u32) -> Grid {
        Grid::new(level, Extent::unit()).unwrap()
    }

    fn uniform(n: usize, seed: u64, side: f64) -> Vec<Rect> {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0 - side);
                let y = rng.random_range(0.0..1.0 - side);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..side),
                    y + rng.random_range(0.0..side),
                )
            })
            .collect()
    }

    #[test]
    fn identical_histograms_have_no_divergence() {
        let rects = uniform(300, 7101, 0.08);
        let g = unit_grid(4);
        for kind in HistogramKind::ALL {
            let a = build_histogram(kind, g, &rects);
            let b = build_histogram(kind, g, &rects);
            assert_eq!(
                first_divergence(a.as_ref(), b.as_ref()).unwrap(),
                None,
                "{kind}"
            );
        }
    }

    #[test]
    fn cardinality_difference_reports_scalar_n() {
        let rects = uniform(50, 7102, 0.05);
        let g = unit_grid(3);
        for kind in HistogramKind::ALL {
            let full = build_histogram(kind, g, &rects);
            let short = build_histogram(kind, g, &rects[..49]);
            let d = first_divergence(full.as_ref(), short.as_ref())
                .unwrap()
                .expect("must diverge");
            assert_eq!(d.statistic, "n", "{kind}: scalars come first");
            assert_eq!(d.cell, None);
            assert_eq!(d.left, "50");
            assert_eq!(d.right, "49");
        }
    }

    #[test]
    fn moved_rect_is_localized_to_its_cell() {
        // Same cardinality, one rect moved between known cells: the
        // divergence must be per-cell, at the lower of the two indices.
        let g = unit_grid(2); // 4×4 cells of side 0.25
        let stay = Rect::new(0.30, 0.55, 0.33, 0.58); // cell (1, 2)
        let from = Rect::new(0.05, 0.05, 0.08, 0.08); // cell (0, 0)
        let to = Rect::new(0.80, 0.80, 0.83, 0.83); // cell (3, 3)
        let first_stat = |kind: HistogramKind| match kind {
            HistogramKind::Ph => "num",
            HistogramKind::GhBasic | HistogramKind::Gh => "c",
            HistogramKind::Euler => "faces",
        };
        for kind in HistogramKind::ALL {
            let a = build_histogram(kind, g, &[stay, from]);
            let b = build_histogram(kind, g, &[stay, to]);
            let d = first_divergence(a.as_ref(), b.as_ref())
                .unwrap()
                .expect("must diverge");
            assert_eq!(d.statistic, first_stat(kind), "{kind}");
            let cell = d.cell.expect("per-cell statistic");
            assert_eq!((cell.col, cell.row), (0, 0), "{kind}: lower cell first");
        }
    }

    #[test]
    fn mass_statistics_render_raw_units() {
        // Equal cardinality and equal counts, different geometry inside
        // one cell: for revised GH the count `c` (4 corners in the cell)
        // matches and the first divergence is the clipped-area mass `o`.
        let g = unit_grid(1); // 2×2 cells of side 0.5
        let a = build_histogram(HistogramKind::Gh, g, &[Rect::new(0.1, 0.1, 0.2, 0.2)]);
        let b = build_histogram(HistogramKind::Gh, g, &[Rect::new(0.1, 0.1, 0.3, 0.3)]);
        let d = first_divergence(a.as_ref(), b.as_ref())
            .unwrap()
            .expect("must diverge");
        assert_eq!(d.statistic, "o");
        assert_eq!(d.cell.map(|c| (c.col, c.row)), Some((0, 0)));
        assert!(d.left.contains("2^-75"), "raw units rendered: {}", d.left);
        assert!(d.to_string().contains("statistic `o`"), "{d}");
    }

    #[test]
    fn mismatches_are_typed_errors() {
        let rects = uniform(30, 7103, 0.06);
        let gh = build_histogram(HistogramKind::Gh, unit_grid(3), &rects);
        let ph = build_histogram(HistogramKind::Ph, unit_grid(3), &rects);
        assert!(matches!(
            first_divergence(gh.as_ref(), ph.as_ref()),
            Err(HistogramError::KindMismatch { .. })
        ));
        let other = build_histogram(HistogramKind::Gh, unit_grid(4), &rects);
        assert!(matches!(
            first_divergence(gh.as_ref(), other.as_ref()),
            Err(HistogramError::GridMismatch { .. })
        ));
    }

    #[test]
    fn euler_edge_statistics_use_their_own_lattice() {
        // One rect spanning cells (0,0)..(1,0) horizontally: its interior
        // vertical edge crossing lives in `v_edges`, a (n-1)-wide lattice.
        let g = unit_grid(1); // 2×2
        let a = build_histogram(HistogramKind::Euler, g, &[Rect::new(0.1, 0.1, 0.9, 0.4)]);
        let b = build_histogram(HistogramKind::Euler, g, &[Rect::new(0.1, 0.1, 0.4, 0.4)]);
        let d = first_divergence(a.as_ref(), b.as_ref())
            .unwrap()
            .expect("must diverge");
        // Both rects occupy cell (0,0); the wide one also covers (1,0),
        // so `faces` diverges there first.
        assert_eq!(d.statistic, "faces");
        assert_eq!(d.cell.map(|c| (c.col, c.row)), Some((1, 0)));
    }
}
