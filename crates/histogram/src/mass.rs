//! Exact fixed-point accumulator for fractional histogram masses.
//!
//! The revised-GH and PH statistics are per-cell sums of fractional
//! contributions (clipped areas, clipped edge lengths). Accumulating them
//! in `f64` makes the sum depend on the order of addition, so two shard
//! builds merged together would differ from the serial build in the last
//! bits — breaking the byte-identical shard-and-merge contract. [`Mass`]
//! instead quantizes every contribution once to a fixed-point grid of
//! 2⁻⁷⁵ and accumulates in `i128`, where addition is associative and
//! commutative: *any* partition of the input produces the identical sum.
//!
//! Capacity and precision: with 75 fractional bits, |sum| < 2⁵² in
//! contribution units is representable; the quantization error is at most
//! 2⁻⁷⁶ per contribution — about 10⁻²³, far below both `f64` round-off on
//! the contributions themselves and every tolerance in the estimator
//! stack. Pathological magnitudes saturate instead of wrapping.

use bytes::{Buf, BufMut};

/// Number of fractional bits in the fixed-point representation.
const FRAC_BITS: i32 = 75;

/// An exactly-mergeable sum of fractional contributions, stored as a
/// fixed-point `i128` in units of 2⁻⁷⁵.
///
/// Every fractional histogram statistic (clipped coverage, clipped edge
/// length) accumulates through this type, which is what makes shard
/// builds merge bit-identically to a serial build: each contribution is
/// quantized *once* by [`Mass::from_f64`] and summation is then exact
/// integer addition — associative and commutative, so the partition of
/// the input into shards cannot change the total.
///
/// # Examples
/// ```
/// use sj_histogram::Mass;
///
/// // Summing in any order or grouping produces the identical value —
/// // unlike f64, where (a + b) + c can differ from a + (b + c).
/// let xs = [0.1, 0.7, 1e-9, 3.17159];
/// let mut forward = Mass::ZERO;
/// for &x in &xs {
///     forward += Mass::from_f64(x);
/// }
/// let mut reverse = Mass::ZERO;
/// for &x in xs.iter().rev() {
///     reverse += Mass::from_f64(x);
/// }
/// assert_eq!(forward, reverse);
/// assert!((forward.to_f64() - xs.iter().sum::<f64>()).abs() < 1e-12);
/// assert!(!forward.is_zero());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Mass(i128);

impl Mass {
    /// The zero mass.
    pub const ZERO: Mass = Mass(0);

    /// Quantizes one `f64` contribution. Multiplying by a power of two is
    /// exact in `f64` (an exponent shift), so the only inexact step is the
    /// final round to the 2⁻⁷⁵ grid; `as` saturates out-of-range values
    /// and maps NaN to zero.
    #[must_use]
    pub fn from_f64(x: f64) -> Self {
        #[allow(clippy::cast_possible_truncation)]
        Self((x * 2f64.powi(FRAC_BITS)).round() as i128)
    }

    /// The closest `f64` to the exact stored sum.
    #[allow(clippy::cast_precision_loss)]
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 * 2f64.powi(-FRAC_BITS)
    }

    /// Whether any mass has been accumulated.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The raw fixed-point value in units of 2⁻⁷⁵ — exact, used by the
    /// divergence reporter to render masses without rounding.
    #[must_use]
    pub fn raw_units(self) -> i128 {
        self.0
    }

    /// Exact negation, or `None` for the one unrepresentable case
    /// (`i128::MIN`). Delta application subtracts masses; the checked
    /// form keeps that path free of silent wrapping.
    ///
    /// # Examples
    /// ```
    /// use sj_histogram::Mass;
    /// let m = Mass::from_f64(0.5);
    /// assert_eq!(m.checked_neg().unwrap().to_f64(), -0.5);
    /// ```
    #[must_use]
    pub fn checked_neg(self) -> Option<Mass> {
        self.0.checked_neg().map(Self)
    }

    /// Subtracts `rhs`, saturating at the `i128` extremes instead of
    /// wrapping — the subtractive mirror of the saturating `+=` used by
    /// merges, so pathological magnitudes clamp explicitly.
    #[must_use]
    pub fn saturating_sub(self, rhs: Mass) -> Mass {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Serializes as 16 little-endian bytes.
    pub(crate) fn put_le(self, buf: &mut impl BufMut) {
        buf.put_slice(&self.0.to_le_bytes());
    }

    /// Reads 16 little-endian bytes written by [`Self::put_le`].
    ///
    /// # Panics
    /// Panics when fewer than 16 bytes remain (callers size-check first).
    pub(crate) fn get_le(data: &mut &[u8]) -> Self {
        let lo = data.get_u64_le();
        let hi = i64::from_le_bytes(data.get_u64_le().to_le_bytes());
        Self((i128::from(hi) << 64) | i128::from(lo))
    }
}

impl std::ops::AddAssign for Mass {
    fn add_assign(&mut self, rhs: Self) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl std::ops::SubAssign for Mass {
    fn sub_assign(&mut self, rhs: Self) {
        *self = self.saturating_sub(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyadic_ratios_are_exact() {
        for x in [0.0, 0.25, 0.5, 1.0, 123.0625, -0.125] {
            assert_eq!(Mass::from_f64(x).to_f64(), x);
        }
    }

    #[test]
    fn addition_is_associative_and_commutative() {
        let xs = [0.1, 0.7, 1e-9, 3.17159, 0.333_333_333];
        let mut left = Mass::ZERO;
        for &x in &xs {
            left += Mass::from_f64(x);
        }
        let mut right = Mass::ZERO;
        for &x in xs.iter().rev() {
            right += Mass::from_f64(x);
        }
        let mut pairs = Mass::ZERO;
        for chunk in xs.chunks(2) {
            let mut partial = Mass::ZERO;
            for &x in chunk {
                partial += Mass::from_f64(x);
            }
            pairs += partial;
        }
        assert_eq!(left, right);
        assert_eq!(left, pairs);
    }

    #[test]
    fn quantization_error_is_negligible() {
        let x = 0.123_456_789_012_345_6;
        let err = (Mass::from_f64(x).to_f64() - x).abs();
        assert!(err < 1e-20, "quantization error {err:e}");
    }

    #[test]
    fn pathological_inputs_saturate_or_zero() {
        assert_eq!(Mass::from_f64(f64::NAN), Mass::ZERO);
        let huge = Mass::from_f64(f64::INFINITY);
        let mut sum = huge;
        sum += huge;
        assert_eq!(sum.0, i128::MAX, "saturates instead of wrapping");
        assert_eq!(Mass::from_f64(f64::NEG_INFINITY).0, i128::MIN);
    }

    /// Mirrors `pathological_inputs_saturate_or_zero` for the subtractive
    /// helpers: saturation stays explicit, never wrapping.
    #[test]
    fn subtraction_saturates_and_negation_is_checked() {
        let a = Mass::from_f64(1.5);
        let b = Mass::from_f64(0.25);
        assert_eq!(a.saturating_sub(b).to_f64(), 1.25);
        let mut sub = a;
        sub -= b;
        assert_eq!(sub, a.saturating_sub(b));

        // Saturation at both extremes instead of wrapping.
        assert_eq!(Mass(i128::MIN).saturating_sub(Mass(1)).0, i128::MIN);
        assert_eq!(Mass(i128::MAX).saturating_sub(Mass(-1)).0, i128::MAX);

        // Checked negation: exact everywhere except the asymmetric MIN.
        assert_eq!(
            Mass::from_f64(0.75).checked_neg(),
            Some(Mass::from_f64(-0.75))
        );
        assert_eq!(Mass(i128::MAX).checked_neg(), Some(Mass(-i128::MAX)));
        assert_eq!(Mass(i128::MIN).checked_neg(), None);
        assert_eq!(Mass::ZERO.checked_neg(), Some(Mass::ZERO));
    }

    /// Subtracting what was added restores the exact original value —
    /// the inverse property delta application relies on.
    #[test]
    fn subtraction_inverts_addition_exactly() {
        let xs = [0.1, 0.7, 1e-9, 3.17159, -2.5];
        let mut acc = Mass::from_f64(12.375);
        let original = acc;
        for &x in &xs {
            acc += Mass::from_f64(x);
        }
        for &x in &xs {
            acc -= Mass::from_f64(x);
        }
        assert_eq!(acc, original);
    }

    #[test]
    fn bytes_roundtrip() {
        for v in [
            Mass::ZERO,
            Mass::from_f64(0.625),
            Mass::from_f64(-1234.5),
            Mass(i128::MAX),
            Mass(i128::MIN),
            Mass(-1),
        ] {
            let mut buf = bytes::BytesMut::new();
            v.put_le(&mut buf);
            let frozen = buf.freeze();
            assert_eq!(frozen.len(), 16);
            let mut cursor: &[u8] = &frozen;
            assert_eq!(Mass::get_le(&mut cursor), v);
        }
    }
}
