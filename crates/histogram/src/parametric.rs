//! The prior parametric model (Aref & Samet, ACM GIS 1994 — paper Eq. 1–2).
//!
//! Assuming data items are uniformly distributed over the extent, the
//! expected spatial join result size is
//!
//! ```text
//! Size = N1·C2 + C1·N2 + N1·N2·(W1·H2 + W2·H1)/A        (Eq. 1)
//! Selectivity = Size / (N1·N2)                           (Eq. 2)
//! ```
//!
//! where `N` is the cardinality, `C` the coverage (summed item area over
//! extent area), and `W`/`H` the average item width/height. The formula is
//! the expansion of `Σ pairs (w1+w2)(h1+h2)/A` under independence of the
//! placement of the two datasets.

/// Inputs of the parametric model for one dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParametricInputs {
    /// Number of items `N`.
    pub count: usize,
    /// Coverage `C = Σ area / A`.
    pub coverage: f64,
    /// Average width `W`.
    pub avg_width: f64,
    /// Average height `H`.
    pub avg_height: f64,
}

/// Estimated result size of the join (paper Eq. 1).
#[must_use]
pub fn parametric_result_size(a: &ParametricInputs, b: &ParametricInputs, extent_area: f64) -> f64 {
    assert!(extent_area > 0.0, "extent area must be positive");
    #[allow(clippy::cast_precision_loss)]
    let (n1, n2) = (a.count as f64, b.count as f64);
    n1 * b.coverage
        + a.coverage * n2
        + n1 * n2 * (a.avg_width * b.avg_height + b.avg_width * a.avg_height) / extent_area
}

/// Estimated selectivity of the join (paper Eq. 2). Returns `0` when
/// either dataset is empty.
#[must_use]
pub fn parametric_selectivity(a: &ParametricInputs, b: &ParametricInputs, extent_area: f64) -> f64 {
    if a.count == 0 || b.count == 0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let denom = a.count as f64 * b.count as f64;
    (parametric_result_size(a, b, extent_area) / denom).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(count: usize, coverage: f64, w: f64, h: f64) -> ParametricInputs {
        ParametricInputs {
            count,
            coverage,
            avg_width: w,
            avg_height: h,
        }
    }

    #[test]
    fn eq1_matches_hand_computation() {
        // N1=100, C1=0.01, W1=H1=0.01; N2=200, C2=0.02, W2=H2=0.01; A=1.
        let a = inputs(100, 0.01, 0.01, 0.01);
        let b = inputs(200, 0.02, 0.01, 0.01);
        let size = parametric_result_size(&a, &b, 1.0);
        // 100*0.02 + 0.01*200 + 100*200*(0.0001+0.0001)/1 = 2+2+4 = 8
        assert!((size - 8.0).abs() < 1e-12);
        let sel = parametric_selectivity(&a, &b, 1.0);
        assert!((sel - 8.0 / 20_000.0).abs() < 1e-15);
    }

    #[test]
    fn point_datasets_have_zero_parametric_selectivity() {
        // Points: zero coverage, zero sides — the model predicts 0, one of
        // its known blind spots the paper motivates GH with.
        let p = inputs(1000, 0.0, 0.0, 0.0);
        assert_eq!(parametric_selectivity(&p, &p, 1.0), 0.0);
    }

    #[test]
    fn symmetric_in_arguments() {
        let a = inputs(123, 0.05, 0.02, 0.03);
        let b = inputs(456, 0.01, 0.004, 0.007);
        assert!(
            (parametric_result_size(&a, &b, 2.0) - parametric_result_size(&b, &a, 2.0)).abs()
                < 1e-12
        );
    }

    #[test]
    fn empty_dataset_zero() {
        let a = inputs(0, 0.0, 0.0, 0.0);
        let b = inputs(10, 0.1, 0.1, 0.1);
        assert_eq!(parametric_selectivity(&a, &b, 1.0), 0.0);
    }

    #[test]
    fn selectivity_clamped_to_unit() {
        // Pathological coverage: raw formula exceeds 1, must clamp.
        let a = inputs(10, 5.0, 0.9, 0.9);
        let b = inputs(10, 5.0, 0.9, 0.9);
        assert_eq!(parametric_selectivity(&a, &b, 1.0), 1.0);
    }

    #[test]
    fn uniform_data_estimate_is_close_to_truth() {
        // Sanity on actual uniform data: build 2 uniform sets, compare
        // parametric estimate to the exact count.
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        use sj_geo::Rect;
        let mut rng = StdRng::seed_from_u64(77);
        let mut gen = |n: usize, side: f64| -> Vec<Rect> {
            (0..n)
                .map(|_| {
                    let x = rng.random_range(0.0..1.0 - side);
                    let y = rng.random_range(0.0..1.0 - side);
                    let w = rng.random_range(0.0..side);
                    let h = rng.random_range(0.0..side);
                    Rect::new(x, y, x + w, y + h)
                })
                .collect()
        };
        let a = gen(2000, 0.02);
        let b = gen(2000, 0.02);
        let stats = |v: &[Rect]| ParametricInputs {
            count: v.len(),
            coverage: v.iter().map(Rect::area).sum::<f64>(),
            avg_width: v.iter().map(Rect::width).sum::<f64>() / v.len() as f64,
            avg_height: v.iter().map(Rect::height).sum::<f64>() / v.len() as f64,
        };
        let est = parametric_result_size(&stats(&a), &stats(&b), 1.0);
        let actual = sj_sweep::sweep_join_count(&a, &b) as f64;
        let rel_err = (est - actual).abs() / actual;
        assert!(
            rel_err < 0.15,
            "parametric estimate should be accurate on uniform data: est {est}, actual {actual}"
        );
    }
}
