//! The Parametric Histogram (PH) scheme — paper Section 3.1.2.
//!
//! PH grids the extent and keeps, per cell, the parametric-model
//! statistics of Table 1, split into two groups:
//!
//! * `Cont(i,j)` — MBRs fully contained in the cell: count `Num`,
//!   coverage `Cov`, average width/height `Xavg`/`Yavg`;
//! * `Isect(i,j)` — MBRs intersecting the cell but crossing its boundary:
//!   count `Num'`, clipped coverage `Cov'`, and the average width/height
//!   of the *intersections* with the cell, `Xavg'`/`Yavg'`.
//!
//! Estimation evaluates the four cases `Sa..Sd` per cell (Cont×Cont,
//! Cont×Isect, Isect×Cont, Isect×Isect) with the parametric formula and
//! divides the summed `Sd` by the mean `AvgSpan` of the two datasets to
//! correct the multiple counting of boundary-crossing × boundary-crossing
//! intersections (paper Eq. 3 and Figure 1).

use crate::band::RowBanded;
use crate::grid::Grid;
use crate::mass::Mass;
use crate::{CorruptSection, HistogramError, SelectivityEstimate};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sj_geo::Rect;

/// Histogram-file magic for PH.
const MAGIC: u32 = 0x534a_5048; // "SJPH"

/// Per-dataset Parametric Histogram.
///
/// All statistics are stored as mergeable *sums* (exact fixed point for
/// fractional masses); Table 1's averages `Xavg`/`Yavg` and the scalar
/// `AvgSpan` are derived at estimate time. This is what makes PH a
/// mergeable sketch like the other families.
#[derive(Debug, Clone, PartialEq)]
pub struct PhHistogram {
    grid: Grid,
    /// Dataset cardinality (read by the SoA kernel views).
    pub(crate) n: u64,
    /// Total cells spanned by boundary-crossing MBRs (`AvgSpan`
    /// numerator).
    span_total: u64,
    /// Number of boundary-crossing MBRs (`AvgSpan` denominator).
    span_rects: u64,
    // Cont group, per cell: count, coverage sum, width/height sums.
    // `pub(crate)` so `kernel::PhView` can decode them into SoA slices.
    pub(crate) num: Vec<u32>,
    pub(crate) cov: Vec<Mass>,
    pub(crate) xsum: Vec<Mass>,
    pub(crate) ysum: Vec<Mass>,
    // Isect group, per cell, over clipped intersections.
    pub(crate) num_x: Vec<u32>,
    pub(crate) cov_x: Vec<Mass>,
    pub(crate) xsum_x: Vec<Mass>,
    pub(crate) ysum_x: Vec<Mass>,
}

impl PhHistogram {
    /// Builds the PH histogram of `rects` on `grid`.
    #[must_use]
    pub fn build(grid: Grid, rects: &[Rect]) -> Self {
        Self::build_parallel(grid, rects, 1)
    }

    /// Builds like [`Self::build`] with grid rows banded across `threads`
    /// scoped worker threads and the band histograms merged; bit-identical
    /// to the serial build for every thread count.
    #[must_use]
    pub fn build_parallel(grid: Grid, rects: &[Rect], threads: usize) -> Self {
        crate::band::build_shard_merge(grid, rects, threads)
    }

    /// The grid the histogram was built on.
    #[must_use]
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Cardinality of the summarized dataset.
    #[must_use]
    pub fn dataset_len(&self) -> usize {
        usize::try_from(self.n).unwrap_or(usize::MAX)
    }

    /// `AvgSpan`: mean number of cells spanned by boundary-crossing MBRs;
    /// `1.0` when no MBR crosses a cell boundary.
    #[must_use]
    pub fn avg_span(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        if self.span_rects == 0 {
            1.0
        } else {
            self.span_total as f64 / self.span_rects as f64
        }
    }

    /// Estimates the join selectivity between the datasets summarized by
    /// `self` and `other` (paper Eq. 3, with the `AvgSpan` correction).
    ///
    /// Dispatches through the SoA kernel layer ([`crate::kernel::PhView`],
    /// DESIGN.md §16); bit-identical to [`Self::estimate_scalar`].
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] when the histograms were
    /// built on different grids.
    pub fn estimate(&self, other: &PhHistogram) -> Result<SelectivityEstimate, HistogramError> {
        crate::kernel::PhView::new(self).estimate(&crate::kernel::PhView::new(other))
    }

    /// Estimates *without* dividing the `Sd` sum by the mean `AvgSpan` —
    /// the naive per-cell parametric sum that multiple-counts
    /// boundary-crossing × boundary-crossing intersections (paper
    /// Figure 1). Exposed for the ablation harness; always at least as
    /// large as [`Self::estimate`].
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] when the histograms were
    /// built on different grids.
    pub fn estimate_uncorrected(
        &self,
        other: &PhHistogram,
    ) -> Result<SelectivityEstimate, HistogramError> {
        crate::kernel::PhView::new(self).estimate_uncorrected(&crate::kernel::PhView::new(other))
    }

    /// The retained scalar reference loop of [`Self::estimate`]: iterates
    /// every cell of the dense per-statistic vectors directly. Kept (and
    /// exercised by the `kernel_agreement` test plus the BENCH_5 `kernels`
    /// section) as the oracle the kernel path must match bit-for-bit.
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] when the histograms were
    /// built on different grids.
    pub fn estimate_scalar(
        &self,
        other: &PhHistogram,
    ) -> Result<SelectivityEstimate, HistogramError> {
        self.estimate_inner(other, true)
    }

    /// Scalar reference loop of [`Self::estimate_uncorrected`]; see
    /// [`Self::estimate_scalar`].
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] when the histograms were
    /// built on different grids.
    pub fn estimate_uncorrected_scalar(
        &self,
        other: &PhHistogram,
    ) -> Result<SelectivityEstimate, HistogramError> {
        self.estimate_inner(other, false)
    }

    fn estimate_inner(
        &self,
        other: &PhHistogram,
        correct_spans: bool,
    ) -> Result<SelectivityEstimate, HistogramError> {
        if !self.grid.compatible(&other.grid) {
            return Err(HistogramError::GridMismatch {
                left_level: self.grid.level(),
                right_level: other.grid.level(),
            });
        }
        let cell_area = self.grid.cell_area();
        // The parametric kernel of Eq. 1 evaluated on per-cell statistics:
        // n1*c2 + c1*n2 + n1*n2*(w1*h2 + w2*h1)/cell_area.
        let kernel = |n1: f64, c1: f64, w1: f64, h1: f64, n2: f64, c2: f64, w2: f64, h2: f64| {
            n1 * c2 + c1 * n2 + n1 * n2 * (w1 * h2 + w2 * h1) / cell_area
        };

        // Table 1 averages, derived on the fly from the stored sums.
        let avg = |sum: Mass, count: u32| {
            if count == 0 {
                0.0
            } else {
                sum.to_f64() / f64::from(count)
            }
        };
        let mut sum_abc = 0.0f64;
        let mut sum_d = 0.0f64;
        for idx in 0..self.grid.num_cells() {
            let (n1, c1, w1, h1) = (
                f64::from(self.num[idx]),
                self.cov[idx].to_f64(),
                avg(self.xsum[idx], self.num[idx]),
                avg(self.ysum[idx], self.num[idx]),
            );
            let (n1x, c1x, w1x, h1x) = (
                f64::from(self.num_x[idx]),
                self.cov_x[idx].to_f64(),
                avg(self.xsum_x[idx], self.num_x[idx]),
                avg(self.ysum_x[idx], self.num_x[idx]),
            );
            let (n2, c2, w2, h2) = (
                f64::from(other.num[idx]),
                other.cov[idx].to_f64(),
                avg(other.xsum[idx], other.num[idx]),
                avg(other.ysum[idx], other.num[idx]),
            );
            let (n2x, c2x, w2x, h2x) = (
                f64::from(other.num_x[idx]),
                other.cov_x[idx].to_f64(),
                avg(other.xsum_x[idx], other.num_x[idx]),
                avg(other.ysum_x[idx], other.num_x[idx]),
            );
            // Sa: Cont1 × Cont2; Sb: Cont1 × Isect2; Sc: Isect1 × Cont2.
            sum_abc += kernel(n1, c1, w1, h1, n2, c2, w2, h2);
            sum_abc += kernel(n1, c1, w1, h1, n2x, c2x, w2x, h2x);
            sum_abc += kernel(n1x, c1x, w1x, h1x, n2, c2, w2, h2);
            // Sd: Isect1 × Isect2 — the only multi-counted case.
            sum_d += kernel(n1x, c1x, w1x, h1x, n2x, c2x, w2x, h2x);
        }
        let span_correction = if correct_spans {
            (self.avg_span() + other.avg_span()) / 2.0
        } else {
            1.0
        };
        let size = sum_abc + sum_d / span_correction;
        #[allow(clippy::cast_precision_loss)]
        let denom = (self.n as f64) * (other.n as f64);
        let raw = if denom == 0.0 { 0.0 } else { size / denom };
        Ok(SelectivityEstimate::from_selectivity(
            raw,
            self.dataset_len(),
            other.dataset_len(),
        ))
    }

    /// Serializes the histogram file.
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.size_bytes());
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(self.grid.level());
        let e = self.grid.extent().rect();
        for v in [e.xlo, e.ylo, e.xhi, e.yhi] {
            buf.put_f64_le(v);
        }
        buf.put_u64_le(self.n);
        buf.put_u64_le(self.span_total);
        buf.put_u64_le(self.span_rects);
        for v in &self.num {
            buf.put_u32_le(*v);
        }
        for v in &self.num_x {
            buf.put_u32_le(*v);
        }
        for arr in [
            &self.cov,
            &self.xsum,
            &self.ysum,
            &self.cov_x,
            &self.xsum_x,
            &self.ysum_x,
        ] {
            for v in arr.iter() {
                v.put_le(&mut buf);
            }
        }
        buf.freeze()
    }

    /// Deserializes a histogram file produced by [`Self::to_bytes`].
    ///
    /// # Errors
    /// Returns [`HistogramError::Corrupt`] on malformed input.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, HistogramError> {
        let corrupt = |s: CorruptSection, msg: &str| HistogramError::corrupt(s, msg);
        if data.remaining() < 4 + 4 + 32 + 8 + 8 + 8 {
            return Err(corrupt(CorruptSection::Header, "truncated header"));
        }
        if data.get_u32_le() != MAGIC {
            return Err(corrupt(CorruptSection::Header, "bad magic"));
        }
        let level = data.get_u32_le();
        let coords = (
            data.get_f64_le(),
            data.get_f64_le(),
            data.get_f64_le(),
            data.get_f64_le(),
        );
        let grid = crate::grid::grid_from_header(level, coords)?;
        let n = data.get_u64_le();
        let span_total = data.get_u64_le();
        let span_rects = data.get_u64_le();
        let cells = grid.num_cells();
        let need = cells * (2 * 4 + 6 * 16);
        if data.remaining() != need {
            return Err(corrupt(CorruptSection::Payload, "payload size mismatch"));
        }
        let read_u32s =
            |data: &mut &[u8]| -> Vec<u32> { (0..cells).map(|_| data.get_u32_le()).collect() };
        let num = read_u32s(&mut data);
        let num_x = read_u32s(&mut data);
        let read_masses =
            |data: &mut &[u8]| -> Vec<Mass> { (0..cells).map(|_| Mass::get_le(data)).collect() };
        let cov = read_masses(&mut data);
        let xsum = read_masses(&mut data);
        let ysum = read_masses(&mut data);
        let cov_x = read_masses(&mut data);
        let xsum_x = read_masses(&mut data);
        let ysum_x = read_masses(&mut data);
        Ok(Self {
            grid,
            n,
            span_total,
            span_rects,
            num,
            cov,
            xsum,
            ysum,
            num_x,
            cov_x,
            xsum_x,
            ysum_x,
        })
    }

    /// Size of the histogram file in bytes — the paper's space-cost
    /// numerator. Depends only on the grid level.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        4 + 4 + 32 + 8 + 8 + 8 + self.grid.num_cells() * (2 * 4 + 6 * 16)
    }

    #[cfg(test)]
    pub(crate) fn cont_count(&self, col: u32, row: u32) -> u32 {
        self.num[self.grid.flat_index(col, row)]
    }

    #[cfg(test)]
    pub(crate) fn isect_count(&self, col: u32, row: u32) -> u32 {
        self.num_x[self.grid.flat_index(col, row)]
    }
}

impl RowBanded for PhHistogram {
    fn build_rows(grid: Grid, rects: &[Rect], lo: u32, hi: u32) -> Self {
        let cells = grid.num_cells();
        // Flattened grid geometry: cell sizes and row bases hoisted out of
        // the per-cell binning loops (same expressions, so bit-identical).
        let bg = crate::kernel::BinGrid::new(&grid);
        let mut n = 0u64;
        let mut span_total = 0u64;
        let mut span_rects = 0u64;
        let mut num = vec![0u32; cells];
        let mut cov = vec![Mass::ZERO; cells];
        let mut xsum = vec![Mass::ZERO; cells];
        let mut ysum = vec![Mass::ZERO; cells];
        let mut num_x = vec![0u32; cells];
        let mut cov_x = vec![Mass::ZERO; cells];
        let mut xsum_x = vec![Mass::ZERO; cells];
        let mut ysum_x = vec![Mass::ZERO; cells];
        for r in rects {
            let (c0, c1, r0, r1) = grid.cell_range(r);
            if r1 < lo || r0 >= hi {
                continue;
            }
            // Scalar statistics go to the band owning the bottom row, so
            // band builds partition them exactly.
            if (lo..hi).contains(&r0) {
                n += 1;
                if !(c0 == c1 && r0 == r1) {
                    span_total += u64::from(c1 - c0 + 1) * u64::from(r1 - r0 + 1);
                    span_rects += 1;
                }
            }
            if c0 == c1 && r0 == r1 {
                if (lo..hi).contains(&r0) {
                    crate::kernel::bin_ph_cont(
                        &bg, r, c0, r0, &mut num, &mut cov, &mut xsum, &mut ysum,
                    );
                }
            } else {
                crate::kernel::bin_ph_isect(
                    &bg,
                    r,
                    (c0, c1),
                    (r0.max(lo), r1.min(hi - 1)),
                    &mut num_x,
                    &mut cov_x,
                    &mut xsum_x,
                    &mut ysum_x,
                );
            }
        }
        Self {
            grid,
            n,
            span_total,
            span_rects,
            num,
            cov,
            xsum,
            ysum,
            num_x,
            cov_x,
            xsum_x,
            ysum_x,
        }
    }

    fn merge_same_grid(&mut self, other: &Self) {
        self.n += other.n;
        self.span_total += other.span_total;
        self.span_rects += other.span_rects;
        for (into, from) in [(&mut self.num, &other.num), (&mut self.num_x, &other.num_x)] {
            for (a, b) in into.iter_mut().zip(from) {
                *a += *b;
            }
        }
        for (into, from) in [
            (&mut self.cov, &other.cov),
            (&mut self.xsum, &other.xsum),
            (&mut self.ysum, &other.ysum),
            (&mut self.cov_x, &other.cov_x),
            (&mut self.xsum_x, &other.xsum_x),
            (&mut self.ysum_x, &other.ysum_x),
        ] {
            for (a, b) in into.iter_mut().zip(from) {
                *a += *b;
            }
        }
    }
}

impl crate::diff::StatInspect for PhHistogram {
    fn scalar_stats(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("n", self.n),
            ("span_total", self.span_total),
            ("span_rects", self.span_rects),
        ]
    }

    fn cell_stats(&self) -> Vec<crate::diff::StatArray<'_>> {
        use crate::diff::{CellValues, StatArray};
        let width = crate::grid::ix(self.grid.cells_per_axis());
        let counts = |name, data| StatArray {
            name,
            width,
            values: CellValues::Counts(data),
        };
        let masses = |name, data| StatArray {
            name,
            width,
            values: CellValues::Masses(data),
        };
        vec![
            counts("num", &self.num),
            counts("num_x", &self.num_x),
            masses("cov", &self.cov),
            masses("xsum", &self.xsum),
            masses("ysum", &self.ysum),
            masses("cov_x", &self.cov_x),
            masses("xsum_x", &self.xsum_x),
            masses("ysum_x", &self.ysum_x),
        ]
    }
}

impl crate::delta::StatInspectMut for PhHistogram {
    fn scalar_stats_mut(&mut self) -> Vec<(&'static str, &mut u64)> {
        vec![
            ("n", &mut self.n),
            ("span_total", &mut self.span_total),
            ("span_rects", &mut self.span_rects),
        ]
    }

    fn cell_stats_mut(&mut self) -> Vec<crate::delta::StatArrayMut<'_>> {
        use crate::delta::{CellValuesMut, StatArrayMut};
        let counts = |name, data| StatArrayMut {
            name,
            values: CellValuesMut::Counts(data),
        };
        let masses = |name, data| StatArrayMut {
            name,
            values: CellValuesMut::Masses(data),
        };
        vec![
            counts("num", &mut self.num),
            counts("num_x", &mut self.num_x),
            masses("cov", &mut self.cov),
            masses("xsum", &mut self.xsum),
            masses("ysum", &mut self.ysum),
            masses("cov_x", &mut self.cov_x),
            masses("xsum_x", &mut self.xsum_x),
            masses("ysum_x", &mut self.ysum_x),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parametric::{parametric_selectivity, ParametricInputs};
    use sj_geo::Extent;

    fn unit_grid(level: u32) -> Grid {
        Grid::new(level, Extent::unit()).unwrap()
    }

    fn stats_of(rects: &[Rect]) -> ParametricInputs {
        #[allow(clippy::cast_precision_loss)]
        let n = rects.len() as f64;
        ParametricInputs {
            count: rects.len(),
            coverage: rects.iter().map(Rect::area).sum::<f64>(),
            avg_width: rects.iter().map(Rect::width).sum::<f64>() / n,
            avg_height: rects.iter().map(Rect::height).sum::<f64>() / n,
        }
    }

    fn uniform(n: usize, seed: u64, side: f64) -> Vec<Rect> {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0 - side);
                let y = rng.random_range(0.0..1.0 - side);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..side),
                    y + rng.random_range(0.0..side),
                )
            })
            .collect()
    }

    #[test]
    fn level_zero_reduces_to_parametric_model() {
        let a = uniform(500, 1, 0.04);
        let b = uniform(700, 2, 0.03);
        let ha = PhHistogram::build(unit_grid(0), &a);
        let hb = PhHistogram::build(unit_grid(0), &b);
        let est = ha.estimate(&hb).unwrap();
        let expected = parametric_selectivity(&stats_of(&a), &stats_of(&b), 1.0);
        assert!(
            (est.selectivity - expected).abs() < 1e-12,
            "PH level 0 must equal Eq. 1/2: {} vs {expected}",
            est.selectivity
        );
    }

    #[test]
    fn contained_vs_spanning_accounting() {
        let g = unit_grid(1); // 2×2 cells of side 0.5
        let rects = vec![
            Rect::new(0.1, 0.1, 0.2, 0.2), // contained in (0,0)
            Rect::new(0.4, 0.1, 0.6, 0.2), // spans (0,0)-(1,0)
            Rect::new(0.6, 0.6, 0.9, 0.9), // contained in (1,1)
        ];
        let h = PhHistogram::build(g, &rects);
        assert_eq!(h.cont_count(0, 0), 1);
        assert_eq!(h.cont_count(1, 1), 1);
        assert_eq!(h.isect_count(0, 0), 1);
        assert_eq!(h.isect_count(1, 0), 1);
        assert_eq!(h.isect_count(0, 1), 0);
        assert!(
            (h.avg_span() - 2.0).abs() < 1e-12,
            "one spanner over 2 cells"
        );
    }

    #[test]
    fn avg_span_defaults_to_one() {
        let h = PhHistogram::build(unit_grid(2), &[Rect::new(0.1, 0.1, 0.12, 0.12)]);
        assert!((h.avg_span() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn estimate_accuracy_on_uniform_data_improves_then_degrades_mildly() {
        // On uniform data PH is already decent at level 0; the estimate
        // must stay sane (within 2× of truth) across levels.
        let a = uniform(3000, 3, 0.02);
        let b = uniform(3000, 4, 0.02);
        let actual = sj_sweep::sweep_join_selectivity(&a, &b);
        for level in 0..=6 {
            let ha = PhHistogram::build(unit_grid(level), &a);
            let hb = PhHistogram::build(unit_grid(level), &b);
            let est = ha.estimate(&hb).unwrap().selectivity;
            let ratio = est / actual;
            assert!(
                (0.5..2.0).contains(&ratio),
                "level {level}: est {est:.3e} vs actual {actual:.3e}"
            );
        }
    }

    #[test]
    fn estimate_on_clustered_data_beats_level_zero() {
        // The motivating case: clustered data breaks the global uniformity
        // assumption; gridding must improve the estimate.
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        // Minimal Box–Muller so this fixture needs no sj-datagen dep.
        fn normal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
            let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.random_range(0.0..1.0);
            mu + sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        }
        let clustered = |rng: &mut StdRng, cx: f64, cy: f64, n: usize| -> Vec<Rect> {
            (0..n)
                .map(|_| {
                    let x = (cx + normal(rng, 0.0, 0.05)).clamp(0.0, 0.99);
                    let y = (cy + normal(rng, 0.0, 0.05)).clamp(0.0, 0.99);
                    let w = rng.random_range(0.0..0.01);
                    let h = rng.random_range(0.0..0.01);
                    Rect::new(x, y, (x + w).min(1.0), (y + h).min(1.0))
                })
                .collect()
        };
        let a = clustered(&mut rng, 0.3, 0.3, 2000);
        let b = clustered(&mut rng, 0.32, 0.32, 2000);
        let actual = sj_sweep::sweep_join_selectivity(&a, &b);
        let err = |level: u32| {
            let ha = PhHistogram::build(unit_grid(level), &a);
            let hb = PhHistogram::build(unit_grid(level), &b);
            let est = ha.estimate(&hb).unwrap().selectivity;
            (est - actual).abs() / actual
        };
        let e0 = err(0);
        let e4 = err(4);
        assert!(
            e4 < e0,
            "gridding should beat the uniform assumption on clustered data: \
             level0 err {e0:.3}, level4 err {e4:.3}"
        );
        assert!(
            e4 < 0.5,
            "level-4 PH error too high on clustered data: {e4:.3}"
        );
    }

    #[test]
    fn grid_mismatch_is_an_error() {
        let a = PhHistogram::build(unit_grid(2), &uniform(10, 5, 0.1));
        let b = PhHistogram::build(unit_grid(3), &uniform(10, 6, 0.1));
        assert!(matches!(
            a.estimate(&b),
            Err(HistogramError::GridMismatch { .. })
        ));
    }

    #[test]
    fn empty_dataset_estimates_zero() {
        let a = PhHistogram::build(unit_grid(2), &[]);
        let b = PhHistogram::build(unit_grid(2), &uniform(100, 7, 0.05));
        let est = a.estimate(&b).unwrap();
        assert_eq!(est.selectivity, 0.0);
        assert_eq!(est.pairs, 0.0);
    }

    #[test]
    fn bytes_roundtrip() {
        let h = PhHistogram::build(unit_grid(3), &uniform(500, 8, 0.05));
        let bytes = h.to_bytes();
        assert_eq!(bytes.len(), h.size_bytes());
        let back = PhHistogram::from_bytes(&bytes).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn from_bytes_rejects_corruption() {
        let h = PhHistogram::build(unit_grid(1), &uniform(50, 9, 0.05));
        let bytes = h.to_bytes();
        assert!(PhHistogram::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(PhHistogram::from_bytes(&bytes[1..]).is_err());
        assert!(PhHistogram::from_bytes(&[]).is_err());
        let mut garbled = bytes.to_vec();
        garbled[0] ^= 0xFF;
        assert!(PhHistogram::from_bytes(&garbled).is_err());
    }

    #[test]
    fn size_depends_only_on_level() {
        let small = PhHistogram::build(unit_grid(4), &uniform(10, 10, 0.01));
        let large = PhHistogram::build(unit_grid(4), &uniform(5000, 11, 0.01));
        assert_eq!(small.size_bytes(), large.size_bytes());
        let finer = PhHistogram::build(unit_grid(5), &uniform(10, 12, 0.01));
        // 4× the cells at the next level ⇒ 4× the payload (64-byte header).
        assert_eq!(finer.size_bytes() - 64, (small.size_bytes() - 64) * 4);
    }
}

#[cfg(test)]
mod correction_tests {
    use super::*;
    use sj_geo::Extent;

    fn unit_grid(level: u32) -> Grid {
        Grid::new(level, Extent::unit()).unwrap()
    }

    fn uniform(n: usize, seed: u64, side: f64) -> Vec<Rect> {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0 - side);
                let y = rng.random_range(0.0..1.0 - side);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..side),
                    y + rng.random_range(0.0..side),
                )
            })
            .collect()
    }

    /// The AvgSpan correction only ever shrinks the estimate (it divides
    /// the non-negative Sd sum by a value >= 1).
    #[test]
    fn corrected_never_exceeds_uncorrected() {
        let a = uniform(1500, 70, 0.08);
        let b = uniform(1500, 71, 0.08);
        for level in 1..=6 {
            let g = unit_grid(level);
            let (ha, hb) = (PhHistogram::build(g, &a), PhHistogram::build(g, &b));
            let corrected = ha.estimate(&hb).unwrap().selectivity;
            let uncorrected = ha.estimate_uncorrected(&hb).unwrap().selectivity;
            assert!(
                corrected <= uncorrected + 1e-15,
                "level {level}: corrected {corrected:e} > uncorrected {uncorrected:e}"
            );
        }
    }

    /// At fine grids where most MBRs span cell boundaries, the correction
    /// is what keeps PH from drifting into gross overestimation
    /// (paper Figure 1's multiple-counting problem).
    #[test]
    fn correction_improves_accuracy_at_fine_grids() {
        // Large rects relative to cells => heavy spanning at level 6.
        let a = uniform(1200, 72, 0.1);
        let b = uniform(1200, 73, 0.1);
        let actual = sj_sweep::sweep_join_selectivity(&a, &b);
        let g = unit_grid(6);
        let (ha, hb) = (PhHistogram::build(g, &a), PhHistogram::build(g, &b));
        let corrected = ha.estimate(&hb).unwrap().selectivity;
        let uncorrected = ha.estimate_uncorrected(&hb).unwrap().selectivity;
        let err_c = (corrected - actual).abs() / actual;
        let err_u = (uncorrected - actual).abs() / actual;
        assert!(
            err_c < err_u,
            "correction should help on spanning-heavy data: corrected {err_c:.3} vs \
             uncorrected {err_u:.3}"
        );
        assert!(
            uncorrected / actual > 1.5,
            "without the correction the estimate should overshoot: {:.2}x",
            uncorrected / actual
        );
    }

    /// When nothing spans a boundary (AvgSpan = 1), the two estimates
    /// coincide.
    #[test]
    fn correction_is_identity_without_spanners() {
        // Tiny rects placed strictly inside level-2 cells.
        let rects: Vec<Rect> = (0..4)
            .flat_map(|i| {
                (0..4).map(move |j| {
                    let x = f64::from(i) * 0.25 + 0.1;
                    let y = f64::from(j) * 0.25 + 0.1;
                    Rect::new(x, y, x + 0.05, y + 0.05)
                })
            })
            .collect();
        let g = unit_grid(2);
        let h = PhHistogram::build(g, &rects);
        assert!((h.avg_span() - 1.0).abs() < f64::EPSILON);
        let c = h.estimate(&h).unwrap().selectivity;
        let u = h.estimate_uncorrected(&h).unwrap().selectivity;
        assert_eq!(c, u);
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;
    use sj_geo::Extent;

    proptest! {
        /// Decoding must never panic: arbitrary bytes either decode or
        /// return a Corrupt/LevelTooLarge error.
        #[test]
        fn from_bytes_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = PhHistogram::from_bytes(&data);
            let _ = crate::GhHistogram::from_bytes(&data);
            let _ = crate::GhBasicHistogram::from_bytes(&data);
        }

        /// Truncating a valid file at any point must error, not panic or
        /// mis-decode.
        #[test]
        fn truncated_files_error(cut in 0usize..1000) {
            let grid = Grid::new(2, Extent::unit()).unwrap();
            let h = PhHistogram::build(grid, &[Rect::new(0.1, 0.1, 0.4, 0.6)]);
            let bytes = h.to_bytes();
            let cut = cut.min(bytes.len().saturating_sub(1));
            prop_assert!(PhHistogram::from_bytes(&bytes[..cut]).is_err());
        }

        /// Flipping any single byte of the header is detected (payload
        /// flips may legitimately decode to different-but-valid stats).
        #[test]
        fn header_bitflips_detected_or_roundtrip(pos in 0usize..4) {
            let grid = Grid::new(1, Extent::unit()).unwrap();
            let h = PhHistogram::build(grid, &[Rect::new(0.1, 0.1, 0.2, 0.2)]);
            let mut bytes = h.to_bytes().to_vec();
            bytes[pos] ^= 0xA5;
            // Magic bytes: must be rejected.
            prop_assert!(PhHistogram::from_bytes(&bytes).is_err());
        }
    }
}
