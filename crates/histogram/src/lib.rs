//! Histogram-based spatial join selectivity estimators (paper Section 3).
//!
//! Three estimator families are provided, all operating on a regular grid
//! over the spatial extent ([`Grid`], `4^h` cells at level `h`):
//!
//! * [`parametric_selectivity`] — the prior parametric model of Aref &
//!   Samet (paper Eq. 1–2): a closed-form formula assuming uniformly
//!   distributed data. This is the baseline the paper compares against,
//!   and is exactly the `h = 0` point of the PH curves in Figure 7.
//! * [`PhHistogram`] — the paper's *Parametric Histogram*: per-cell
//!   parametric statistics split into fully-contained and
//!   boundary-crossing MBR groups (Table 1), combined with the four-case
//!   estimation `Sa..Sd` and the `AvgSpan` multiple-counting correction
//!   (Eq. 3).
//! * [`GhBasicHistogram`] / [`GhHistogram`] — the paper's *Geometric
//!   Histogram*: every pairwise MBR intersection contributes exactly four
//!   "intersection points" (corners of one MBR inside the other, or
//!   horizontal×vertical edge crossings — Figure 2); the schemes estimate
//!   the total number of intersection points and divide by four. The
//!   basic variant keeps integer counts per cell (Eq. 4); the revised
//!   variant keeps fractional clipped masses (Table 2, Eq. 5) and is the
//!   headline "GH" of the paper.
//!
//! All histograms serialize to a compact *histogram file* byte format
//! ([`PhHistogram::to_bytes`] etc.) whose size — dependent only on the
//! grid level, never on the dataset — is the paper's space-cost metric.
//!
//! All four families additionally implement the [`SpatialHistogram`]
//! trait: they are *mergeable sketches* whose per-cell statistics are
//! pure sums over the input MBRs, so shard builds merge — bit-for-bit
//! identically to a serial build — and any kind round-trips through the
//! versioned [`SpatialHistogram::persist`] / [`load_histogram`] envelope.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod band;
pub mod crc;
mod delta;
mod diff;
mod error;
mod euler;
mod gh;
mod grid;
pub mod kernel;
mod mass;
mod parametric;
mod ph;
mod traits;

pub use delta::{load_delta, HistogramDelta, DELTA_MAGIC, DELTA_VERSION};
pub use diff::{first_divergence, CellLocation, Divergence};
pub use error::{CorruptSection, HistogramError};
pub use euler::EulerHistogram;
pub use gh::{GhBasicHistogram, GhHistogram};
pub use grid::Grid;
pub use mass::Mass;
pub use parametric::{parametric_result_size, parametric_selectivity, ParametricInputs};
pub use ph::PhHistogram;
pub use traits::{
    build_histogram, build_histogram_parallel, build_histogram_sharded, load_histogram,
    load_histogram_json, HistogramKind, SpatialHistogram,
};

/// A selectivity estimate together with the implied result size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectivityEstimate {
    /// Estimated join selectivity in `[0, 1]` (clamped).
    pub selectivity: f64,
    /// Estimated number of intersecting pairs (`selectivity · N1 · N2`).
    pub pairs: f64,
}

impl SelectivityEstimate {
    /// Builds an estimate from a raw (possibly slightly negative or
    /// super-unit) selectivity value and the two cardinalities.
    #[must_use]
    pub fn from_selectivity(raw: f64, n1: usize, n2: usize) -> Self {
        let selectivity = raw.clamp(0.0, 1.0);
        #[allow(clippy::cast_precision_loss)]
        let pairs = selectivity * n1 as f64 * n2 as f64;
        Self { selectivity, pairs }
    }
}
