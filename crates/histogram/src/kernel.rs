//! Cache-conscious SoA estimate/build kernels (DESIGN.md §16).
//!
//! The histogram structs store their per-cell statistics as one vector
//! per statistic already, but the hot estimate loops still pay a
//! fixed-point decode (`Mass::to_f64`) and an average derivation per
//! cell *per estimate*. This module provides flat structure-of-arrays
//! **views** — one contiguous `f64` slice per statistic, decoded once —
//! plus a per-row occupancy bitmap ([`RowMask`]) so the Eq. 4/5
//! corner×overlap and edge×edge products run over contiguous slices and
//! skip empty-cell runs in 64-cell strides.
//!
//! Three views cover the gridded families:
//!
//! * [`PhView`] — PH `Cont`/`Isect` groups (Table 1) with the averages
//!   `Xavg`/`Yavg` pre-derived, plus the scalar `AvgSpan` statistics;
//! * [`GhView`] — revised GH `{C, O, H, V}` masses (Table 2, Eq. 5);
//! * [`GhBasicView`] — basic GH `{C, I, V, H}` counts (Eq. 4).
//!
//! # Bit-identity with the scalar paths
//!
//! `estimate` on the structs dispatches through these kernels, and the
//! result is **bit-identical** to the retained scalar reference loops
//! ([`crate::PhHistogram::estimate_scalar`] and friends): the views
//! pre-compute exactly the `f64` values the scalar loop derives per
//! cell, cells are visited in the same ascending flat-index order, and
//! the only cells skipped are those whose contribution is exactly
//! `+0.0` (adding `+0.0` to the non-negative accumulator cannot change
//! its bits). DESIGN.md §16 spells the argument out; the
//! `kernel_agreement` integration test pins it across the verify-merge
//! scenario matrix.
//!
//! The build side is served by the crate-internal `BinGrid`, a
//! flattened view of the grid geometry (hoisted cell sizes, row-base
//! flat indices) used by the `bin_*` binning loops that
//! `build`/`build_parallel` delegate to. Those loops stay under lint
//! rule r2: they accumulate only integers and `Mass` (quantizing once
//! via `Mass::from_f64`), which is what keeps shard merges bit-exact.

use crate::grid::ix;
use crate::grid::Grid;
use crate::mass::Mass;
use crate::{GhBasicHistogram, GhHistogram, HistogramError, PhHistogram, SelectivityEstimate};
use sj_geo::{HEdge, Rect, VEdge};

// ---------------------------------------------------------------------
// Occupancy bitmaps
// ---------------------------------------------------------------------

/// Per-row occupancy bitmap over the grid cells of a view.
///
/// Each grid row is encoded as `ceil(cols / 64)` little-endian `u64`
/// words (bit `c % 64` of word `c / 64` covers column `c`); rows are
/// concatenated in ascending order, so for grids of 64+ columns the
/// encoding coincides with a flat row-major bitmap. The estimate
/// kernels AND the two operands' masks word-by-word: a zero word skips
/// 64 cells at once, a full word runs a branch-free contiguous pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMask {
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl RowMask {
    /// An all-empty mask for a `rows × cols` grid.
    #[must_use]
    pub fn empty(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        Self {
            cols,
            words_per_row,
            words: vec![0u64; rows * words_per_row],
        }
    }

    /// Marks cell `(row, col)` occupied.
    pub fn set(&mut self, row: usize, col: usize) {
        self.words[row * self.words_per_row + col / 64] |= 1u64 << (col % 64);
    }

    /// `true` when cell `(row, col)` is occupied.
    #[must_use]
    pub fn is_set(&self, row: usize, col: usize) -> bool {
        self.words[row * self.words_per_row + col / 64] & (1u64 << (col % 64)) != 0
    }

    /// Number of occupied cells.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| ix(w.count_ones())).sum()
    }
}

/// Calls `f` with the flat index of every cell occupied in **both**
/// masks, in ascending flat-index order.
///
/// This is the shared sweep of all three estimate kernels: zero words
/// (empty 64-cell runs) are skipped without touching the statistic
/// slices, and all-ones words take a contiguous branch-free inner loop.
fn for_each_joint(a: &RowMask, b: &RowMask, mut f: impl FnMut(usize)) {
    debug_assert_eq!(a.cols, b.cols);
    debug_assert_eq!(a.words.len(), b.words.len());
    let wpr = a.words_per_row.max(1);
    for (w_idx, (wa, wb)) in a.words.iter().zip(&b.words).enumerate() {
        let mut bits = wa & wb;
        if bits == 0 {
            continue;
        }
        let row = w_idx / wpr;
        let word_in_row = w_idx % wpr;
        let base = row * a.cols + word_in_row * 64;
        if bits == u64::MAX {
            for idx in base..base + 64 {
                f(idx);
            }
            continue;
        }
        while bits != 0 {
            f(base + ix(bits.trailing_zeros()));
            bits &= bits - 1;
        }
    }
}

fn grid_check(a: Grid, b: Grid) -> Result<(), HistogramError> {
    if a.compatible(&b) {
        Ok(())
    } else {
        Err(HistogramError::GridMismatch {
            left_level: a.level(),
            right_level: b.level(),
        })
    }
}

/// Table 1 averages, derived on the fly from the stored sums — the
/// exact expression of the scalar estimate loop.
fn avg(sum: Mass, count: u32) -> f64 {
    if count == 0 {
        0.0
    } else {
        sum.to_f64() / f64::from(count)
    }
}

// ---------------------------------------------------------------------
// PH view (Table 1 / Eq. 3)
// ---------------------------------------------------------------------

/// Flat SoA view of a [`PhHistogram`] for repeated estimation.
///
/// Decodes the per-cell `Cont`/`Isect` statistics into eight contiguous
/// `f64` slices (counts, coverages and pre-derived `Xavg`/`Yavg`
/// averages per group) plus a [`RowMask`], once; every subsequent
/// [`PhView::estimate`] then runs the four-case `Sa..Sd` sweep over the
/// slices with empty cells skipped. The result is bit-identical to
/// [`PhHistogram::estimate_scalar`] on the backing histograms.
///
/// ```
/// use sj_geo::{Extent, Rect};
/// use sj_histogram::kernel::PhView;
/// use sj_histogram::{Grid, PhHistogram, SpatialHistogram};
///
/// let grid = Grid::new(3, Extent::unit())?;
/// let a: Vec<Rect> = (0..40)
///     .map(|i| {
///         let t = f64::from(i) * 0.02;
///         Rect::new(t, t, t + 0.06, t + 0.05)
///     })
///     .collect();
/// let b: Vec<Rect> = (0..30)
///     .map(|i| {
///         let t = f64::from(i) * 0.03;
///         Rect::new(t, 0.9 - t, t + 0.05, 0.97 - t)
///     })
///     .collect();
/// let (ha, hb) = (PhHistogram::build(grid, &a), PhHistogram::build(grid, &b));
///
/// // Decode once, estimate many times (the warm-serving pattern).
/// let (va, vb) = (PhView::new(&ha), PhView::new(&hb));
/// let kernel = va.estimate(&vb)?;
///
/// // The trait path dispatches through the same kernel: bit-identical.
/// let trait_path = ha.estimate_join(&hb)?;
/// assert_eq!(kernel.selectivity.to_bits(), trait_path.selectivity.to_bits());
/// assert_eq!(kernel.pairs.to_bits(), trait_path.pairs.to_bits());
/// # Ok::<(), sj_histogram::HistogramError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PhView {
    grid: Grid,
    len: usize,
    n_f64: f64,
    avg_span: f64,
    cell_area: f64,
    // Cont group: count, coverage, average width, average height.
    n: Vec<f64>,
    c: Vec<f64>,
    w: Vec<f64>,
    h: Vec<f64>,
    // Isect group, over clipped intersections.
    nx: Vec<f64>,
    cx: Vec<f64>,
    wx: Vec<f64>,
    hx: Vec<f64>,
    occ: RowMask,
}

impl PhView {
    /// Decodes `hist` into the flat SoA form.
    #[must_use]
    pub fn new(hist: &PhHistogram) -> Self {
        let grid = hist.grid();
        let cpa = ix(grid.cells_per_axis());
        let cells = grid.num_cells();
        #[allow(clippy::cast_precision_loss)]
        let n_f64 = hist.n as f64;
        let mut view = Self {
            grid,
            len: hist.dataset_len(),
            n_f64,
            avg_span: hist.avg_span(),
            cell_area: grid.cell_area(),
            n: Vec::with_capacity(cells),
            c: Vec::with_capacity(cells),
            w: Vec::with_capacity(cells),
            h: Vec::with_capacity(cells),
            nx: Vec::with_capacity(cells),
            cx: Vec::with_capacity(cells),
            wx: Vec::with_capacity(cells),
            hx: Vec::with_capacity(cells),
            occ: RowMask::empty(cpa, cpa),
        };
        for idx in 0..cells {
            let n = f64::from(hist.num[idx]);
            let c = hist.cov[idx].to_f64();
            let w = avg(hist.xsum[idx], hist.num[idx]);
            let h = avg(hist.ysum[idx], hist.num[idx]);
            let nx = f64::from(hist.num_x[idx]);
            let cx = hist.cov_x[idx].to_f64();
            let wx = avg(hist.xsum_x[idx], hist.num_x[idx]);
            let hx = avg(hist.ysum_x[idx], hist.num_x[idx]);
            if n != 0.0
                || c != 0.0
                || w != 0.0
                || h != 0.0
                || nx != 0.0
                || cx != 0.0
                || wx != 0.0
                || hx != 0.0
            {
                view.occ.set(idx / cpa, idx % cpa);
            }
            view.n.push(n);
            view.c.push(c);
            view.w.push(w);
            view.h.push(h);
            view.nx.push(nx);
            view.cx.push(cx);
            view.wx.push(wx);
            view.hx.push(hx);
        }
        view
    }

    /// The grid the backing histogram was built on.
    #[must_use]
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Cardinality of the summarized dataset.
    #[must_use]
    pub fn dataset_len(&self) -> usize {
        self.len
    }

    /// Occupied cells (any non-zero `Cont`/`Isect` statistic).
    #[must_use]
    pub fn occupied_cells(&self) -> usize {
        self.occ.count()
    }

    /// Kernel-path PH estimate (paper Eq. 3 with the `AvgSpan`
    /// correction); bit-identical to [`PhHistogram::estimate`].
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] when the backing
    /// histograms were built on different grids.
    pub fn estimate(&self, other: &PhView) -> Result<SelectivityEstimate, HistogramError> {
        self.estimate_with(other, true)
    }

    /// Kernel-path variant of [`PhHistogram::estimate_uncorrected`].
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] when the backing
    /// histograms were built on different grids.
    pub fn estimate_uncorrected(
        &self,
        other: &PhView,
    ) -> Result<SelectivityEstimate, HistogramError> {
        self.estimate_with(other, false)
    }

    pub(crate) fn estimate_with(
        &self,
        other: &PhView,
        correct_spans: bool,
    ) -> Result<SelectivityEstimate, HistogramError> {
        grid_check(self.grid, other.grid)?;
        let cell_area = self.cell_area;
        // The parametric kernel of Eq. 1 — identical expression (and
        // therefore rounding) to the scalar reference loop.
        let kernel = |n1: f64, c1: f64, w1: f64, h1: f64, n2: f64, c2: f64, w2: f64, h2: f64| {
            n1 * c2 + c1 * n2 + n1 * n2 * (w1 * h2 + w2 * h1) / cell_area
        };
        let mut sum_abc = 0.0f64;
        let mut sum_d = 0.0f64;
        for_each_joint(&self.occ, &other.occ, |idx| {
            let (n1, c1, w1, h1) = (self.n[idx], self.c[idx], self.w[idx], self.h[idx]);
            let (n1x, c1x, w1x, h1x) = (self.nx[idx], self.cx[idx], self.wx[idx], self.hx[idx]);
            let (n2, c2, w2, h2) = (other.n[idx], other.c[idx], other.w[idx], other.h[idx]);
            let (n2x, c2x, w2x, h2x) = (other.nx[idx], other.cx[idx], other.wx[idx], other.hx[idx]);
            // Sa: Cont1 × Cont2; Sb: Cont1 × Isect2; Sc: Isect1 × Cont2.
            sum_abc += kernel(n1, c1, w1, h1, n2, c2, w2, h2);
            sum_abc += kernel(n1, c1, w1, h1, n2x, c2x, w2x, h2x);
            sum_abc += kernel(n1x, c1x, w1x, h1x, n2, c2, w2, h2);
            // Sd: Isect1 × Isect2 — the only multi-counted case.
            sum_d += kernel(n1x, c1x, w1x, h1x, n2x, c2x, w2x, h2x);
        });
        let span_correction = if correct_spans {
            (self.avg_span + other.avg_span) / 2.0
        } else {
            1.0
        };
        let size = sum_abc + sum_d / span_correction;
        let denom = self.n_f64 * other.n_f64;
        let raw = if denom == 0.0 { 0.0 } else { size / denom };
        Ok(SelectivityEstimate::from_selectivity(
            raw, self.len, other.len,
        ))
    }
}

// ---------------------------------------------------------------------
// Revised GH view (Table 2 / Eq. 5)
// ---------------------------------------------------------------------

/// Flat SoA view of a [`GhHistogram`] for repeated estimation.
///
/// Decodes `{C, O, H, V}` into four contiguous `f64` slices plus a
/// [`RowMask`], once; [`GhView::intersection_points`] then runs the
/// Eq. 5 corner×overlap and edge×edge products over the slices with
/// empty-cell runs skipped. Bit-identical to
/// [`GhHistogram::intersection_points_scalar`].
///
/// ```
/// use sj_geo::{Extent, Rect};
/// use sj_histogram::kernel::GhView;
/// use sj_histogram::{GhHistogram, Grid, SpatialHistogram};
///
/// let grid = Grid::new(5, Extent::unit())?;
/// let streams = vec![Rect::new(0.10, 0.10, 0.30, 0.12)];
/// let roads = vec![Rect::new(0.12, 0.05, 0.14, 0.40)];
/// let hs = GhHistogram::build(grid, &streams);
/// let hr = GhHistogram::build(grid, &roads);
///
/// let (vs, vr) = (GhView::new(&hs), GhView::new(&hr));
/// let kernel = vs.estimate(&vr)?;
/// let trait_path = hs.estimate_join(&hr)?;
/// assert_eq!(kernel.pairs.to_bits(), trait_path.pairs.to_bits());
/// assert!(kernel.pairs > 0.9 && kernel.pairs < 1.1, "one crossing pair");
/// # Ok::<(), sj_histogram::HistogramError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GhView {
    grid: Grid,
    len: usize,
    n_f64: f64,
    c: Vec<f64>,
    o: Vec<f64>,
    h: Vec<f64>,
    v: Vec<f64>,
    occ: RowMask,
}

impl GhView {
    /// Decodes `hist` into the flat SoA form.
    #[must_use]
    pub fn new(hist: &GhHistogram) -> Self {
        let grid = hist.grid();
        let cpa = ix(grid.cells_per_axis());
        let cells = grid.num_cells();
        #[allow(clippy::cast_precision_loss)]
        let n_f64 = hist.n as f64;
        let mut view = Self {
            grid,
            len: hist.dataset_len(),
            n_f64,
            c: Vec::with_capacity(cells),
            o: Vec::with_capacity(cells),
            h: Vec::with_capacity(cells),
            v: Vec::with_capacity(cells),
            occ: RowMask::empty(cpa, cpa),
        };
        for idx in 0..cells {
            let c = f64::from(hist.c[idx]);
            let o = hist.o[idx].to_f64();
            let h = hist.h[idx].to_f64();
            let v = hist.v[idx].to_f64();
            if c != 0.0 || o != 0.0 || h != 0.0 || v != 0.0 {
                view.occ.set(idx / cpa, idx % cpa);
            }
            view.c.push(c);
            view.o.push(o);
            view.h.push(h);
            view.v.push(v);
        }
        view
    }

    /// The grid the backing histogram was built on.
    #[must_use]
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Cardinality of the summarized dataset.
    #[must_use]
    pub fn dataset_len(&self) -> usize {
        self.len
    }

    /// Occupied cells (any non-zero `{C, O, H, V}` mass).
    #[must_use]
    pub fn occupied_cells(&self) -> usize {
        self.occ.count()
    }

    /// Kernel-path Eq. 5 intersection-point total; bit-identical to
    /// [`GhHistogram::intersection_points_scalar`].
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] when the backing
    /// histograms were built on different grids.
    pub fn intersection_points(&self, other: &GhView) -> Result<f64, HistogramError> {
        grid_check(self.grid, other.grid)?;
        let mut total = 0.0f64;
        for_each_joint(&self.occ, &other.occ, |idx| {
            total += self.c[idx] * other.o[idx]
                + other.c[idx] * self.o[idx]
                + self.h[idx] * other.v[idx]
                + other.h[idx] * self.v[idx];
        });
        Ok(total)
    }

    /// Kernel-path revised-GH estimate: `IP / 4 / (N₁·N₂)`;
    /// bit-identical to [`GhHistogram::estimate`].
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] when the backing
    /// histograms were built on different grids.
    pub fn estimate(&self, other: &GhView) -> Result<SelectivityEstimate, HistogramError> {
        let ip = self.intersection_points(other)?;
        let denom = self.n_f64 * other.n_f64;
        let raw = if denom == 0.0 { 0.0 } else { ip / 4.0 / denom };
        Ok(SelectivityEstimate::from_selectivity(
            raw, self.len, other.len,
        ))
    }
}

// ---------------------------------------------------------------------
// Basic GH view (Eq. 4)
// ---------------------------------------------------------------------

/// Flat SoA view of a [`GhBasicHistogram`] for repeated estimation.
///
/// Same layout discipline as [`GhView`], over the integer `{C, I, V,
/// H}` counts of Eq. 4. Bit-identical to
/// [`GhBasicHistogram::intersection_points_scalar`].
///
/// ```
/// use sj_geo::{Extent, Rect};
/// use sj_histogram::kernel::GhBasicView;
/// use sj_histogram::{GhBasicHistogram, Grid, SpatialHistogram};
///
/// let grid = Grid::new(3, Extent::unit())?;
/// let a = vec![Rect::new(0.1, 0.1, 0.6, 0.6)];
/// let b = vec![Rect::new(0.4, 0.4, 0.9, 0.9)];
/// let (ha, hb) = (
///     GhBasicHistogram::build(grid, &a),
///     GhBasicHistogram::build(grid, &b),
/// );
/// let (va, vb) = (GhBasicView::new(&ha), GhBasicView::new(&hb));
/// let ip = va.intersection_points(&vb)?;
/// assert!((ip - 4.0).abs() < 1e-12, "one resolved pair = 4 points");
/// let trait_path = ha.estimate_join(&hb)?;
/// assert_eq!(
///     va.estimate(&vb)?.selectivity.to_bits(),
///     trait_path.selectivity.to_bits(),
/// );
/// # Ok::<(), sj_histogram::HistogramError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GhBasicView {
    grid: Grid,
    len: usize,
    n_f64: f64,
    c: Vec<f64>,
    i: Vec<f64>,
    v: Vec<f64>,
    h: Vec<f64>,
    occ: RowMask,
}

impl GhBasicView {
    /// Decodes `hist` into the flat SoA form.
    #[must_use]
    pub fn new(hist: &GhBasicHistogram) -> Self {
        let grid = hist.grid();
        let cpa = ix(grid.cells_per_axis());
        let cells = grid.num_cells();
        #[allow(clippy::cast_precision_loss)]
        let n_f64 = hist.n as f64;
        let mut view = Self {
            grid,
            len: hist.dataset_len(),
            n_f64,
            c: Vec::with_capacity(cells),
            i: Vec::with_capacity(cells),
            v: Vec::with_capacity(cells),
            h: Vec::with_capacity(cells),
            occ: RowMask::empty(cpa, cpa),
        };
        for idx in 0..cells {
            let c = f64::from(hist.c[idx]);
            let i = f64::from(hist.i[idx]);
            let v = f64::from(hist.v[idx]);
            let h = f64::from(hist.h[idx]);
            if c != 0.0 || i != 0.0 || v != 0.0 || h != 0.0 {
                view.occ.set(idx / cpa, idx % cpa);
            }
            view.c.push(c);
            view.i.push(i);
            view.v.push(v);
            view.h.push(h);
        }
        view
    }

    /// The grid the backing histogram was built on.
    #[must_use]
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Cardinality of the summarized dataset.
    #[must_use]
    pub fn dataset_len(&self) -> usize {
        self.len
    }

    /// Occupied cells (any non-zero `{C, I, V, H}` count).
    #[must_use]
    pub fn occupied_cells(&self) -> usize {
        self.occ.count()
    }

    /// Kernel-path Eq. 4 intersection-point total; bit-identical to
    /// [`GhBasicHistogram::intersection_points_scalar`].
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] when the backing
    /// histograms were built on different grids.
    pub fn intersection_points(&self, other: &GhBasicView) -> Result<f64, HistogramError> {
        grid_check(self.grid, other.grid)?;
        let mut total = 0.0f64;
        for_each_joint(&self.occ, &other.occ, |idx| {
            total += self.c[idx] * other.i[idx]
                + self.i[idx] * other.c[idx]
                + self.v[idx] * other.h[idx]
                + self.h[idx] * other.v[idx];
        });
        Ok(total)
    }

    /// Kernel-path basic-GH estimate: `IP / 4 / (N₁·N₂)`;
    /// bit-identical to [`GhBasicHistogram::estimate`].
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] when the backing
    /// histograms were built on different grids.
    pub fn estimate(&self, other: &GhBasicView) -> Result<SelectivityEstimate, HistogramError> {
        let ip = self.intersection_points(other)?;
        let denom = self.n_f64 * other.n_f64;
        let raw = if denom == 0.0 { 0.0 } else { ip / 4.0 / denom };
        Ok(SelectivityEstimate::from_selectivity(
            raw, self.len, other.len,
        ))
    }
}

// ---------------------------------------------------------------------
// Build-side binning view
// ---------------------------------------------------------------------

/// Flattened grid geometry for the binning loops: cell sizes hoisted
/// out of the per-cell iteration, flat indices derived from a per-row
/// base instead of re-multiplying per cell. Every derived value is the
/// same expression [`Grid`] evaluates, so the quantized `Mass`
/// contributions — and therefore the built histograms — are
/// bit-identical to binning through [`Grid`] directly.
pub(crate) struct BinGrid {
    cpa: usize,
    xlo: f64,
    ylo: f64,
    cell_w: f64,
    cell_h: f64,
    cell_area: f64,
}

impl BinGrid {
    pub(crate) fn new(grid: &Grid) -> Self {
        let r = grid.extent().rect();
        Self {
            cpa: ix(grid.cells_per_axis()),
            xlo: r.xlo,
            ylo: r.ylo,
            cell_w: grid.cell_width(),
            cell_h: grid.cell_height(),
            cell_area: grid.cell_area(),
        }
    }

    /// Flat index of the first cell of `row` (row-major).
    pub(crate) fn row_base(&self, row: u32) -> usize {
        ix(row) * self.cpa
    }

    /// World-space rectangle of cell `(col, row)` — the same expression
    /// as [`Grid::cell_rect`], with the division hoisted.
    pub(crate) fn cell_rect(&self, col: u32, row: u32) -> Rect {
        let x0 = self.xlo + f64::from(col) * self.cell_w;
        let y0 = self.ylo + f64::from(row) * self.cell_h;
        Rect::new(x0, y0, x0 + self.cell_w, y0 + self.cell_h)
    }

    /// `r.area()` as a fraction of one cell's area.
    pub(crate) fn area_ratio(&self, r: &Rect) -> f64 {
        r.area() / self.cell_area
    }

    /// Clipped overlap of `r` with cell `(col, row)` as an area ratio
    /// (revised GH `O`).
    pub(crate) fn overlap_ratio(&self, r: &Rect, col: u32, row: u32) -> f64 {
        r.intersection_area(&self.cell_rect(col, row)) / self.cell_area
    }

    /// Clipped horizontal-edge length over cell width (revised GH `H`).
    pub(crate) fn h_ratio(&self, edge: &HEdge, col: u32, row: u32) -> f64 {
        edge.clipped_len(&self.cell_rect(col, row)) / self.cell_w
    }

    /// Clipped vertical-edge length over cell height (revised GH `V`).
    pub(crate) fn v_ratio(&self, edge: &VEdge, col: u32, row: u32) -> f64 {
        edge.clipped_len(&self.cell_rect(col, row)) / self.cell_h
    }
}

/// PH `Cont` binning of one fully-contained rect into cell `(col, row)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bin_ph_cont(
    bg: &BinGrid,
    r: &Rect,
    col: u32,
    row: u32,
    num: &mut [u32],
    cov: &mut [Mass],
    xsum: &mut [Mass],
    ysum: &mut [Mass],
) {
    let idx = bg.row_base(row) + ix(col);
    num[idx] += 1;
    cov[idx] += Mass::from_f64(bg.area_ratio(r));
    xsum[idx] += Mass::from_f64(r.width());
    ysum[idx] += Mass::from_f64(r.height());
}

/// PH `Isect` binning of one boundary-crossing rect over the banded
/// cell block `(c0..=c1) × (row_lo..=row_hi)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bin_ph_isect(
    bg: &BinGrid,
    r: &Rect,
    (c0, c1): (u32, u32),
    (row_lo, row_hi): (u32, u32),
    num_x: &mut [u32],
    cov_x: &mut [Mass],
    xsum_x: &mut [Mass],
    ysum_x: &mut [Mass],
) {
    for row in row_lo..=row_hi {
        let base = bg.row_base(row);
        for col in c0..=c1 {
            let idx = base + ix(col);
            let cell = bg.cell_rect(col, row);
            // The cell range guarantees a (possibly degenerate) closed
            // intersection exists.
            let clip = r
                .intersection(&cell)
                .unwrap_or_else(|| Rect::from_point(cell.center()));
            num_x[idx] += 1;
            cov_x[idx] += Mass::from_f64(bg.area_ratio(&clip));
            xsum_x[idx] += Mass::from_f64(clip.width());
            ysum_x[idx] += Mass::from_f64(clip.height());
        }
    }
}

/// Revised-GH overlap-mass binning of one rect over a banded block.
pub(crate) fn bin_gh_overlap(
    bg: &BinGrid,
    r: &Rect,
    (c0, c1): (u32, u32),
    (row_lo, row_hi): (u32, u32),
    o: &mut [Mass],
) {
    for row in row_lo..=row_hi {
        let base = bg.row_base(row);
        for col in c0..=c1 {
            o[base + ix(col)] += Mass::from_f64(bg.overlap_ratio(r, col, row));
        }
    }
}

/// Revised-GH horizontal-edge binning along one row.
pub(crate) fn bin_gh_hedge(
    bg: &BinGrid,
    edge: &HEdge,
    (c0, c1): (u32, u32),
    row: u32,
    h: &mut [Mass],
) {
    let base = bg.row_base(row);
    for col in c0..=c1 {
        h[base + ix(col)] += Mass::from_f64(bg.h_ratio(edge, col, row));
    }
}

/// Revised-GH vertical-edge binning along one banded column.
pub(crate) fn bin_gh_vedge(
    bg: &BinGrid,
    edge: &VEdge,
    col: u32,
    (row_lo, row_hi): (u32, u32),
    v: &mut [Mass],
) {
    for row in row_lo..=row_hi {
        v[bg.row_base(row) + ix(col)] += Mass::from_f64(bg.v_ratio(edge, col, row));
    }
}

/// Counter binning over a banded block (basic GH `I`).
pub(crate) fn bin_count_block(
    bg: &BinGrid,
    (c0, c1): (u32, u32),
    (row_lo, row_hi): (u32, u32),
    out: &mut [u32],
) {
    for row in row_lo..=row_hi {
        let base = bg.row_base(row);
        for col in c0..=c1 {
            out[base + ix(col)] += 1;
        }
    }
}

/// Counter binning along one row (basic GH `H`).
pub(crate) fn bin_count_row(bg: &BinGrid, (c0, c1): (u32, u32), row: u32, out: &mut [u32]) {
    let base = bg.row_base(row);
    for col in c0..=c1 {
        out[base + ix(col)] += 1;
    }
}

/// Counter binning along one banded column (basic GH `V`).
pub(crate) fn bin_count_col(bg: &BinGrid, col: u32, (row_lo, row_hi): (u32, u32), out: &mut [u32]) {
    for row in row_lo..=row_hi {
        out[bg.row_base(row) + ix(col)] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geo::Extent;

    #[test]
    fn row_mask_set_and_count() {
        let mut m = RowMask::empty(8, 8);
        assert_eq!(m.count(), 0);
        m.set(0, 0);
        m.set(3, 7);
        m.set(7, 7);
        assert_eq!(m.count(), 3);
        assert!(m.is_set(3, 7));
        assert!(!m.is_set(3, 6));
    }

    #[test]
    fn joint_iteration_is_ascending_and_intersects() {
        let mut a = RowMask::empty(3, 70); // two words per row
        let mut b = RowMask::empty(3, 70);
        for col in [0usize, 1, 63, 64, 69] {
            a.set(1, col);
        }
        for col in [1usize, 63, 64, 65] {
            b.set(1, col);
        }
        a.set(0, 5);
        b.set(2, 5);
        let mut seen = Vec::new();
        for_each_joint(&a, &b, |idx| seen.push(idx));
        // Row 1 starts at flat index 70.
        assert_eq!(seen, vec![71, 133, 134]);
    }

    #[test]
    fn joint_iteration_dense_word_fast_path() {
        let mut a = RowMask::empty(2, 64);
        let mut b = RowMask::empty(2, 64);
        for col in 0..64 {
            a.set(0, col);
            b.set(0, col);
        }
        let mut seen = Vec::new();
        for_each_joint(&a, &b, |idx| seen.push(idx));
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn bin_grid_matches_grid_geometry() {
        let e = Extent::new(Rect::new(-10.0, 20.0, 30.0, 40.0));
        let grid = Grid::new(3, e).unwrap();
        let bg = BinGrid::new(&grid);
        for row in 0..8 {
            for col in 0..8 {
                assert_eq!(bg.cell_rect(col, row), grid.cell_rect(col, row));
                assert_eq!(bg.row_base(row) + ix(col), grid.flat_index(col, row));
            }
        }
    }

    #[test]
    fn view_occupancy_matches_histogram() {
        let grid = Grid::new(4, Extent::unit()).unwrap();
        let rects = vec![
            Rect::new(0.1, 0.1, 0.11, 0.11),
            Rect::new(0.5, 0.5, 0.8, 0.8),
        ];
        let gh = GhHistogram::build(grid, &rects);
        let view = GhView::new(&gh);
        assert_eq!(view.occupied_cells(), gh.occupied_cells());
        assert!(view.occupied_cells() < grid.num_cells());
    }
}
