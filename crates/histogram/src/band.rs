//! Row-band work partitioning and the generic shard-and-merge build
//! driver shared by all four histogram families.
//!
//! All four histogram schemes accumulate per-cell statistics into
//! row-major arrays, and every contribution a rectangle makes lands in a
//! definite grid row (its corner rows, its cell-range rows, or the rows
//! its edges pass through). Splitting the grid rows into contiguous
//! *bands* — one per worker thread — therefore partitions the work with
//! no shared mutable state: each worker scans the full rectangle list in
//! order and applies only the contributions whose row falls in its band.
//! Scalar statistics (cardinality, span sums) are attributed to the band
//! owning the rectangle's bottom row, so the band builds partition *all*
//! statistics of the serial build.
//!
//! Because every per-cell statistic is accumulated exactly (integers, or
//! [`crate::mass::Mass`] fixed point), merging the band histograms with
//! the families' ordinary `merge` reproduces the serial build
//! *bit-for-bit* at every thread count — the serial build is just the
//! single-band case of the same code path. The same argument covers
//! rect-range sharding: exact addition is associative, so any partition
//! of the input rectangles merges to the identical histogram.

use crate::grid::Grid;
use sj_geo::Rect;

/// A histogram family buildable from a row-restricted accumulation pass
/// and mergeable with another same-grid instance. Implemented by all four
/// families; [`build_shard_merge`] is their shared build driver.
pub(crate) trait RowBanded: Sized + Send {
    /// Builds the histogram of `rects` on `grid`, keeping only
    /// contributions landing in grid rows `lo..hi` and attributing
    /// per-rectangle scalar statistics (counts, span sums) to the band
    /// containing each rectangle's bottom row.
    fn build_rows(grid: Grid, rects: &[Rect], lo: u32, hi: u32) -> Self;

    /// Adds `other`'s statistics into `self`; both are same-grid by
    /// construction here.
    fn merge_same_grid(&mut self, other: &Self);
}

/// Builds a histogram by sharding the grid rows across `threads` band
/// workers and merging the band builds. Bit-identical to the serial
/// (single-band) build for every thread count.
pub(crate) fn build_shard_merge<H: RowBanded>(grid: Grid, rects: &[Rect], threads: usize) -> H {
    let bands = map_row_bands(grid.cells_per_axis(), threads, |lo, hi| {
        H::build_rows(grid, rects, lo, hi)
    });
    let mut bands = bands.into_iter();
    // map_row_bands always yields at least one band; the fallback keeps
    // this path panic-free regardless.
    let mut acc = match bands.next() {
        Some(first) => first,
        None => H::build_rows(grid, rects, 0, grid.cells_per_axis()),
    };
    for band in bands {
        acc.merge_same_grid(&band);
    }
    acc
}

/// Runs `accumulate(row_lo, row_hi)` over contiguous half-open bands of
/// grid rows covering `0..rows`, one scoped worker thread per band, and
/// returns the band results in row order. `threads <= 1` runs a single
/// full-range band on the caller's thread.
pub(crate) fn map_row_bands<T, F>(rows: u32, threads: usize, accumulate: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32, u32) -> T + Sync,
{
    let threads = threads.max(1).min(crate::grid::ix(rows.max(1)));
    if threads == 1 {
        return vec![accumulate(0, rows)];
    }
    // threads <= rows <= 2^MAX_LEVEL here, so the conversion is exact;
    // the saturating fallback keeps the math total anyway.
    let per_band = rows.div_ceil(u32::try_from(threads).unwrap_or(u32::MAX));
    let bounds: Vec<(u32, u32)> = (0..rows)
        .step_by(crate::grid::ix(per_band))
        .map(|lo| (lo, (lo + per_band).min(rows)))
        .collect();
    let accumulate = &accumulate;
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .into_iter()
            .map(|(lo, hi)| scope.spawn(move || accumulate(lo, hi)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_cover_all_rows_in_order() {
        for rows in [1u32, 2, 7, 8, 9, 64] {
            for threads in [1usize, 2, 3, 8, 100] {
                let bands = map_row_bands(rows, threads, |lo, hi| (lo, hi));
                assert_eq!(bands[0].0, 0, "rows={rows} threads={threads}");
                assert_eq!(bands.last().unwrap().1, rows);
                for pair in bands.windows(2) {
                    assert_eq!(pair[0].1, pair[1].0, "bands must be contiguous");
                }
                for &(lo, hi) in &bands {
                    assert!(lo < hi, "empty band rows={rows} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn serial_is_one_full_band() {
        let bands = map_row_bands(16, 1, |lo, hi| (lo, hi));
        assert_eq!(bands, vec![(0, 16)]);
    }
}
