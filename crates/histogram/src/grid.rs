use crate::{CorruptSection, HistogramError};
use sj_geo::{Extent, Point, Rect};

/// Lossless `u32` → `usize` widening for cell indices and counts.
///
/// Every supported target has `usize` of at least 32 bits, so this is
/// the one sanctioned widening in cell-index math; all other integer
/// casts in the crate go through `try_from` or carry a reasoned
/// `sj-lint` suppression (rule R4).
pub(crate) const fn ix(v: u32) -> usize {
    // sj-lint: allow(cast, u32 to usize widening cannot truncate on >=32-bit targets)
    v as usize
}

/// Reconstructs the grid encoded in a deserialized histogram header,
/// validating that all four extent coordinates are finite, the corners
/// are properly ordered with a representable positive area (so
/// [`Extent::new`] cannot panic on decoder-controlled input), and the
/// level is within [`Grid::MAX_LEVEL`]. Shared by every family decoder.
pub(crate) fn grid_from_header(
    level: u32,
    (xlo, ylo, xhi, yhi): (f64, f64, f64, f64),
) -> Result<Grid, HistogramError> {
    let corrupt = |m: &str| HistogramError::corrupt(CorruptSection::Header, m);
    if !(xlo.is_finite() && ylo.is_finite() && xhi.is_finite() && yhi.is_finite())
        || xhi <= xlo
        || yhi <= ylo
        || !((xhi - xlo) * (yhi - ylo)).is_normal()
    {
        return Err(corrupt("bad extent"));
    }
    let extent = Extent::new(Rect::new(xlo, ylo, xhi, yhi));
    Grid::new(level, extent).map_err(|_| corrupt("grid level out of range"))
}

/// A regular grid over a spatial extent: `2^level` columns × `2^level`
/// rows, i.e. `4^level` equi-sized cells, exactly the gridding of the
/// paper's Section 3 ("`2^h` vertical and `2^h` horizontal lines, where
/// `h` denotes the level of gridding").
///
/// # Cell assignment convention
///
/// Cells are half-open `[lo, hi)` in both axes, with the final row/column
/// closed at the extent boundary, so every point of the extent maps to
/// exactly one cell. Rectangle→cell ranges follow the same convention:
/// a rectangle whose edge lies exactly on an interior grid line is
/// assigned the cell on the *high* side of the line for that edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grid {
    level: u32,
    extent: Extent,
    cells_per_axis: u32,
}

impl Grid {
    /// Maximum supported gridding level. `4^11` ≈ 4.2 M cells keeps even
    /// the largest (PH) histogram file under ~300 MB; the paper evaluates
    /// levels 0–9.
    pub const MAX_LEVEL: u32 = 11;

    /// Creates a grid at `level` over `extent`.
    ///
    /// # Errors
    /// Returns [`HistogramError::LevelTooLarge`] above [`Self::MAX_LEVEL`].
    pub fn new(level: u32, extent: Extent) -> Result<Self, HistogramError> {
        if level > Self::MAX_LEVEL {
            return Err(HistogramError::LevelTooLarge(level));
        }
        Ok(Self {
            level,
            extent,
            cells_per_axis: 1 << level,
        })
    }

    /// Grid level `h`.
    #[must_use]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The underlying extent.
    #[must_use]
    pub fn extent(&self) -> Extent {
        self.extent
    }

    /// Cells per axis (`2^h`).
    #[must_use]
    pub fn cells_per_axis(&self) -> u32 {
        self.cells_per_axis
    }

    /// Total number of cells (`4^h`).
    #[must_use]
    pub fn num_cells(&self) -> usize {
        ix(self.cells_per_axis) * ix(self.cells_per_axis)
    }

    /// Cell width in world units.
    #[must_use]
    pub fn cell_width(&self) -> f64 {
        self.extent.width() / f64::from(self.cells_per_axis)
    }

    /// Cell height in world units.
    #[must_use]
    pub fn cell_height(&self) -> f64 {
        self.extent.height() / f64::from(self.cells_per_axis)
    }

    /// Area of one cell.
    #[must_use]
    pub fn cell_area(&self) -> f64 {
        self.cell_width() * self.cell_height()
    }

    /// Column index of an x coordinate (clamped into the grid).
    #[must_use]
    pub fn col_of(&self, x: f64) -> u32 {
        let n = f64::from(self.cells_per_axis);
        let u = (x - self.extent.rect().xlo) / self.extent.width();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        // sj-lint: allow(cast, clamped to [0, n-1] with n <= 2^MAX_LEVEL; NaN maps to 0)
        let i = (u * n).floor().clamp(0.0, n - 1.0) as u32;
        i
    }

    /// Row index of a y coordinate (clamped into the grid).
    #[must_use]
    pub fn row_of(&self, y: f64) -> u32 {
        let n = f64::from(self.cells_per_axis);
        let u = (y - self.extent.rect().ylo) / self.extent.height();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        // sj-lint: allow(cast, clamped to [0, n-1] with n <= 2^MAX_LEVEL; NaN maps to 0)
        let j = (u * n).floor().clamp(0.0, n - 1.0) as u32;
        j
    }

    /// Cell of a point.
    #[must_use]
    pub fn cell_of_point(&self, p: Point) -> (u32, u32) {
        (self.col_of(p.x), self.row_of(p.y))
    }

    /// Flat index of cell `(col, row)` in row-major order.
    ///
    /// Out-of-grid coordinates are clamped into the last column/row, so
    /// the returned index is always `< num_cells()` even in release
    /// builds — corrupt or miscomputed coordinates can therefore never
    /// index a statistics array out of contract. Callers that need to
    /// *detect* out-of-grid coordinates (decoders) use
    /// [`Self::checked_flat_index`] instead. The `debug_assert!` keeps
    /// logic errors loud under `cargo test`.
    #[must_use]
    pub fn flat_index(&self, col: u32, row: u32) -> usize {
        debug_assert!(col < self.cells_per_axis && row < self.cells_per_axis);
        let col = col.min(self.cells_per_axis - 1);
        let row = row.min(self.cells_per_axis - 1);
        ix(row) * ix(self.cells_per_axis) + ix(col)
    }

    /// Flat index of cell `(col, row)`, or a typed error when the
    /// coordinates fall outside the grid — the checked counterpart of
    /// [`Self::flat_index`] for decoder-controlled input.
    ///
    /// # Errors
    /// Returns [`HistogramError::Corrupt`] (payload section) when
    /// `col` or `row` is out of range.
    pub fn checked_flat_index(&self, col: u32, row: u32) -> Result<usize, HistogramError> {
        if col >= self.cells_per_axis || row >= self.cells_per_axis {
            return Err(HistogramError::corrupt(
                CorruptSection::Payload,
                format!(
                    "cell ({col}, {row}) outside the {n}x{n} grid",
                    n = self.cells_per_axis
                ),
            ));
        }
        Ok(ix(row) * ix(self.cells_per_axis) + ix(col))
    }

    /// World-space rectangle of cell `(col, row)`.
    #[must_use]
    pub fn cell_rect(&self, col: u32, row: u32) -> Rect {
        let w = self.cell_width();
        let h = self.cell_height();
        let x0 = self.extent.rect().xlo + f64::from(col) * w;
        let y0 = self.extent.rect().ylo + f64::from(row) * h;
        Rect::new(x0, y0, x0 + w, y0 + h)
    }

    /// Inclusive `(col_lo..=col_hi, row_lo..=row_hi)` range of cells a
    /// rectangle occupies under the half-open convention.
    #[must_use]
    pub fn cell_range(&self, r: &Rect) -> (u32, u32, u32, u32) {
        (
            self.col_of(r.xlo),
            self.col_of(r.xhi),
            self.row_of(r.ylo),
            self.row_of(r.yhi),
        )
    }

    /// Number of cells a rectangle spans.
    #[must_use]
    pub fn span_count(&self, r: &Rect) -> u64 {
        let (c0, c1, r0, r1) = self.cell_range(r);
        u64::from(c1 - c0 + 1) * u64::from(r1 - r0 + 1)
    }

    /// `true` if the rectangle lies within a single cell.
    #[must_use]
    pub fn is_contained_in_one_cell(&self, r: &Rect) -> bool {
        self.span_count(r) == 1
    }

    /// `true` when two grids can be combined for estimation: identical
    /// level and extent.
    #[must_use]
    pub fn compatible(&self, other: &Grid) -> bool {
        self.level == other.level && self.extent == other.extent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_grid(level: u32) -> Grid {
        Grid::new(level, Extent::unit()).unwrap()
    }

    #[test]
    fn level_zero_is_one_cell() {
        let g = unit_grid(0);
        assert_eq!(g.num_cells(), 1);
        assert_eq!(g.cell_area(), 1.0);
        assert_eq!(g.cell_rect(0, 0), Rect::new(0.0, 0.0, 1.0, 1.0));
        assert!(g.is_contained_in_one_cell(&Rect::new(0.1, 0.1, 0.9, 0.9)));
    }

    #[test]
    fn level_two_cell_geometry() {
        let g = unit_grid(2);
        assert_eq!(g.cells_per_axis(), 4);
        assert_eq!(g.num_cells(), 16);
        assert_eq!(g.cell_width(), 0.25);
        assert_eq!(g.cell_rect(1, 2), Rect::new(0.25, 0.5, 0.5, 0.75));
    }

    #[test]
    fn point_assignment_half_open() {
        let g = unit_grid(2);
        // Interior boundary goes to the high cell.
        assert_eq!(g.cell_of_point(Point::new(0.25, 0.0)), (1, 0));
        // Extent max clamps into the last cell.
        assert_eq!(g.cell_of_point(Point::new(1.0, 1.0)), (3, 3));
        // Out-of-extent coordinates clamp.
        assert_eq!(g.cell_of_point(Point::new(-0.5, 2.0)), (0, 3));
    }

    #[test]
    fn cell_range_of_spanning_rect() {
        let g = unit_grid(2);
        let r = Rect::new(0.1, 0.1, 0.6, 0.3);
        assert_eq!(g.cell_range(&r), (0, 2, 0, 1));
        assert_eq!(g.span_count(&r), 6);
        assert!(!g.is_contained_in_one_cell(&r));
        let small = Rect::new(0.3, 0.3, 0.4, 0.4);
        assert_eq!(g.span_count(&small), 1);
        assert!(g.is_contained_in_one_cell(&small));
    }

    #[test]
    fn flat_index_row_major() {
        let g = unit_grid(3);
        assert_eq!(g.flat_index(0, 0), 0);
        assert_eq!(g.flat_index(7, 0), 7);
        assert_eq!(g.flat_index(0, 1), 8);
        assert_eq!(g.flat_index(7, 7), 63);
    }

    #[test]
    fn flat_index_clamps_out_of_grid_coordinates_in_release() {
        // In release builds (debug_assertions off) out-of-grid
        // coordinates must clamp into the last cell instead of
        // producing an index beyond num_cells(). Under `cargo test`
        // the debug_assert fires instead, which is also the contract.
        let g = unit_grid(2);
        if cfg!(debug_assertions) {
            assert!(std::panic::catch_unwind(|| g.flat_index(4, 0)).is_err());
        } else {
            assert_eq!(g.flat_index(4, 0), g.flat_index(3, 0));
            assert_eq!(g.flat_index(0, 9), g.flat_index(0, 3));
            assert!(g.flat_index(u32::MAX, u32::MAX) < g.num_cells());
        }
    }

    #[test]
    fn checked_flat_index_rejects_out_of_grid() {
        let g = unit_grid(2);
        assert_eq!(g.checked_flat_index(3, 3).unwrap(), g.num_cells() - 1);
        assert!(matches!(
            g.checked_flat_index(4, 0),
            Err(HistogramError::Corrupt { .. })
        ));
        assert!(matches!(
            g.checked_flat_index(0, 4),
            Err(HistogramError::Corrupt { .. })
        ));
    }

    #[test]
    fn cells_tile_the_extent() {
        let g = unit_grid(3);
        let mut area = 0.0;
        for row in 0..8 {
            for col in 0..8 {
                area += g.cell_rect(col, row).area();
            }
        }
        assert!((area - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_unit_extent() {
        let e = Extent::new(Rect::new(-10.0, 20.0, 30.0, 40.0));
        let g = Grid::new(2, e).unwrap();
        assert_eq!(g.cell_width(), 10.0);
        assert_eq!(g.cell_height(), 5.0);
        assert_eq!(g.cell_of_point(Point::new(-10.0, 20.0)), (0, 0));
        assert_eq!(g.cell_of_point(Point::new(29.999, 39.999)), (3, 3));
    }

    #[test]
    fn level_cap() {
        assert!(matches!(
            Grid::new(Grid::MAX_LEVEL + 1, Extent::unit()),
            Err(HistogramError::LevelTooLarge(_))
        ));
        assert!(Grid::new(Grid::MAX_LEVEL, Extent::unit()).is_ok());
    }

    #[test]
    fn compatibility() {
        let a = unit_grid(3);
        let b = unit_grid(3);
        let c = unit_grid(4);
        let d = Grid::new(3, Extent::new(Rect::new(0.0, 0.0, 2.0, 2.0))).unwrap();
        assert!(a.compatible(&b));
        assert!(!a.compatible(&c));
        assert!(!a.compatible(&d));
    }
}
