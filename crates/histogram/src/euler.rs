//! Euler histogram: exact distinct-object range counting at grid
//! resolution (Beigel & Tanin 1998; Sun, Agrawal & El Abbadi, 2002).
//!
//! **Extension beyond the paper**, included as the classical *exact*
//! counterpart to the Geometric Histogram's statistical window counting:
//! both summarize a dataset on the same grid, but where GH estimates, the
//! Euler histogram is exact for cell-aligned query windows.
//!
//! The idea is inclusion–exclusion via the Euler characteristic. Each
//! object's MBR covers a rectangular block of grid cells. The histogram
//! maintains, per grid *face*, how many objects' blocks contain it:
//!
//! * `F` — per cell (2-dimensional faces),
//! * `Ev` — per interior vertical edge between horizontally adjacent
//!   cells, `Eh` — per interior horizontal edge,
//! * `V` — per interior vertex where four cells meet.
//!
//! For a query window `Q` spanning a block of cells, each object whose
//! block intersects `Q` contributes a non-empty rectangular sub-block,
//! whose Euler characteristic (#cells − #interior edges + #interior
//! vertices) is exactly 1. Summing the stored counts with the same signs
//! over `Q`'s interior therefore counts each intersecting object exactly
//! once — no double counting, the problem PH fights with `AvgSpan`.

use crate::band::RowBanded;
use crate::grid::Grid;
use crate::{CorruptSection, HistogramError, SelectivityEstimate};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sj_geo::Rect;

const MAGIC: u32 = 0x534a_4555; // "SJEU"

/// An Euler histogram over a grid.
#[derive(Debug, Clone, PartialEq)]
pub struct EulerHistogram {
    grid: Grid,
    n: u64,
    /// Per-cell coverage counts, `n × n` row-major.
    faces: Vec<u32>,
    /// Interior vertical edges: `(n-1) × n` (col boundary c|c+1, row r),
    /// indexed `row * (n-1) + col`.
    v_edges: Vec<u32>,
    /// Interior horizontal edges: `n × (n-1)` (col c, row boundary r|r+1),
    /// indexed `row * n + col`.
    h_edges: Vec<u32>,
    /// Interior vertices: `(n-1) × (n-1)`, indexed `row * (n-1) + col`.
    vertices: Vec<u32>,
}

impl EulerHistogram {
    /// Builds the Euler histogram of `rects` on `grid`.
    #[must_use]
    pub fn build(grid: Grid, rects: &[Rect]) -> Self {
        Self::build_parallel(grid, rects, 1)
    }

    /// Builds like [`Self::build`] with grid rows banded across `threads`
    /// scoped worker threads and the band histograms merged; equal to the
    /// serial build for every thread count (see the row-band driver in `band.rs`).
    #[must_use]
    pub fn build_parallel(grid: Grid, rects: &[Rect], threads: usize) -> Self {
        crate::band::build_shard_merge(grid, rects, threads)
    }

    /// The grid the histogram was built on.
    #[must_use]
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Cardinality of the summarized dataset.
    #[must_use]
    pub fn dataset_len(&self) -> usize {
        usize::try_from(self.n).unwrap_or(usize::MAX)
    }

    /// Counts the objects whose cell blocks intersect the cell block of
    /// `window`. **Exact** when both the data MBRs and the window are
    /// aligned to cell boundaries; otherwise exact at cell resolution
    /// (an object partially sharing a cell with the window counts even if
    /// the two never touch inside it).
    #[must_use]
    pub fn count_in_window(&self, window: &Rect) -> u64 {
        let grid = self.grid();
        let n = crate::grid::ix(grid.cells_per_axis());
        let (c0, c1, r0, r1) = grid.cell_range(window);
        let (c0, c1, r0, r1) = (
            crate::grid::ix(c0),
            crate::grid::ix(c1),
            crate::grid::ix(r0),
            crate::grid::ix(r1),
        );
        let mut total: i64 = 0;
        for row in r0..=r1 {
            for col in c0..=c1 {
                total += i64::from(self.faces[row * n + col]);
            }
            for col in c0..c1 {
                total -= i64::from(self.v_edges[row * (n - 1) + col]);
            }
        }
        for row in r0..r1 {
            for col in c0..=c1 {
                total -= i64::from(self.h_edges[row * n + col]);
            }
            for col in c0..c1 {
                total += i64::from(self.vertices[row * (n - 1) + col]);
            }
        }
        debug_assert!(total >= 0, "Euler sum must be non-negative");
        u64::try_from(total.max(0)).unwrap_or(0)
    }

    /// Total number of objects (full-extent query; sanity identity).
    #[must_use]
    pub fn total_count(&self) -> u64 {
        self.count_in_window(&self.grid.extent().rect())
    }

    /// Counts the pairs of objects (one from each histogram) whose cell
    /// blocks intersect — the Euler-characteristic join. For every pair
    /// with intersecting blocks, the shared sub-block's Euler
    /// characteristic (#faces − #edges + #vertices) is exactly 1, so the
    /// signed sum of per-face count products counts each such pair once:
    /// **exact** at cell resolution, with no multiple counting.
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] on incompatible grids.
    pub fn intersection_pairs(&self, other: &Self) -> Result<u64, HistogramError> {
        if !self.grid.compatible(&other.grid) {
            return Err(HistogramError::GridMismatch {
                left_level: self.grid.level(),
                right_level: other.grid.level(),
            });
        }
        let mut total: i128 = 0;
        for (a, b) in self.faces.iter().zip(&other.faces) {
            total += i128::from(*a) * i128::from(*b);
        }
        for (a, b) in self.v_edges.iter().zip(&other.v_edges) {
            total -= i128::from(*a) * i128::from(*b);
        }
        for (a, b) in self.h_edges.iter().zip(&other.h_edges) {
            total -= i128::from(*a) * i128::from(*b);
        }
        for (a, b) in self.vertices.iter().zip(&other.vertices) {
            total += i128::from(*a) * i128::from(*b);
        }
        debug_assert!(total >= 0, "Euler join sum must be non-negative");
        Ok(u64::try_from(total.max(0)).unwrap_or(u64::MAX))
    }

    /// Estimates the join selectivity as block-intersecting pairs over
    /// `N₁·N₂`. A slight overcount of the true MBR join: pairs sharing a
    /// cell without touching inside it are included (cell-resolution
    /// semantics, like [`Self::count_in_window`]).
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] on incompatible grids.
    pub fn estimate(&self, other: &Self) -> Result<SelectivityEstimate, HistogramError> {
        let pairs = self.intersection_pairs(other)?;
        #[allow(clippy::cast_precision_loss)]
        let denom = (self.n as f64) * (other.n as f64);
        #[allow(clippy::cast_precision_loss)]
        let raw = if denom == 0.0 {
            0.0
        } else {
            pairs as f64 / denom
        };
        Ok(SelectivityEstimate::from_selectivity(
            raw,
            self.dataset_len(),
            other.dataset_len(),
        ))
    }

    /// Serializes the histogram file.
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.size_bytes());
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(self.grid.level());
        let e = self.grid.extent().rect();
        for v in [e.xlo, e.ylo, e.xhi, e.yhi] {
            buf.put_f64_le(v);
        }
        buf.put_u64_le(self.n);
        for arr in [&self.faces, &self.v_edges, &self.h_edges, &self.vertices] {
            for x in arr.iter() {
                buf.put_u32_le(*x);
            }
        }
        buf.freeze()
    }

    /// Deserializes a histogram file produced by [`Self::to_bytes`].
    ///
    /// # Errors
    /// Returns [`HistogramError::Corrupt`] on malformed input.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, HistogramError> {
        let corrupt = |s: CorruptSection, m: &str| HistogramError::corrupt(s, m);
        if data.remaining() < 48 {
            return Err(corrupt(CorruptSection::Header, "truncated header"));
        }
        if data.get_u32_le() != MAGIC {
            return Err(corrupt(CorruptSection::Header, "bad magic"));
        }
        let level = data.get_u32_le();
        let coords = (
            data.get_f64_le(),
            data.get_f64_le(),
            data.get_f64_le(),
            data.get_f64_le(),
        );
        let grid = crate::grid::grid_from_header(level, coords)?;
        let n = data.get_u64_le();
        let cells = crate::grid::ix(grid.cells_per_axis());
        let [sz_faces, sz_v_edges, sz_h_edges, sz_vertices] = [
            cells * cells,
            cells.saturating_sub(1) * cells,
            cells * cells.saturating_sub(1),
            cells.saturating_sub(1) * cells.saturating_sub(1),
        ];
        if data.remaining() != (sz_faces + sz_v_edges + sz_h_edges + sz_vertices) * 4 {
            return Err(corrupt(CorruptSection::Payload, "payload size mismatch"));
        }
        let read = |len: usize, data: &mut &[u8]| -> Vec<u32> {
            (0..len).map(|_| data.get_u32_le()).collect()
        };
        let faces = read(sz_faces, &mut data);
        let v_edges = read(sz_v_edges, &mut data);
        let h_edges = read(sz_h_edges, &mut data);
        let vertices = read(sz_vertices, &mut data);
        Ok(Self {
            grid,
            n,
            faces,
            v_edges,
            h_edges,
            vertices,
        })
    }

    /// Histogram file size in bytes (level-dependent only).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        4 + 4
            + 32
            + 8
            + 4 * (self.faces.len() + self.v_edges.len() + self.h_edges.len() + self.vertices.len())
    }
}

impl RowBanded for EulerHistogram {
    fn build_rows(grid: Grid, rects: &[Rect], lo: u32, hi: u32) -> Self {
        let n = crate::grid::ix(grid.cells_per_axis());
        let (lo, hi) = (crate::grid::ix(lo), crate::grid::ix(hi));
        let mut count = 0u64;
        let mut faces = vec![0u32; n * n];
        let mut v_edges = vec![0u32; n.saturating_sub(1) * n];
        let mut h_edges = vec![0u32; n * n.saturating_sub(1)];
        let mut vertices = vec![0u32; n.saturating_sub(1) * n.saturating_sub(1)];
        for r in rects {
            let (c0, c1, r0, r1) = grid.cell_range(r);
            let (c0, c1, r0, r1) = (
                crate::grid::ix(c0),
                crate::grid::ix(c1),
                crate::grid::ix(r0),
                crate::grid::ix(r1),
            );
            if r1 < lo || r0 >= hi {
                continue;
            }
            if (lo..hi).contains(&r0) {
                count += 1;
            }
            for row in r0.max(lo)..=r1.min(hi - 1) {
                for col in c0..=c1 {
                    faces[row * n + col] += 1;
                }
                for col in c0..c1 {
                    v_edges[row * (n - 1) + col] += 1;
                }
            }
            // Horizontal edges and vertices live on row boundaries r0..r1,
            // always below the last grid row.
            for row in r0.max(lo)..r1.min(hi) {
                for col in c0..=c1 {
                    h_edges[row * n + col] += 1;
                }
                for col in c0..c1 {
                    vertices[row * (n - 1) + col] += 1;
                }
            }
        }
        Self {
            grid,
            n: count,
            faces,
            v_edges,
            h_edges,
            vertices,
        }
    }

    fn merge_same_grid(&mut self, other: &Self) {
        self.n += other.n;
        for (into, from) in [
            (&mut self.faces, &other.faces),
            (&mut self.v_edges, &other.v_edges),
            (&mut self.h_edges, &other.h_edges),
            (&mut self.vertices, &other.vertices),
        ] {
            for (a, b) in into.iter_mut().zip(from) {
                *a += *b;
            }
        }
    }
}

impl crate::diff::StatInspect for EulerHistogram {
    fn scalar_stats(&self) -> Vec<(&'static str, u64)> {
        vec![("n", self.n)]
    }

    fn cell_stats(&self) -> Vec<crate::diff::StatArray<'_>> {
        use crate::diff::{CellValues, StatArray};
        // Each face class lives on its own lattice: interior edge and
        // vertex arrays are one narrower/shorter than the cell grid.
        let axis = crate::grid::ix(self.grid.cells_per_axis());
        let interior = axis.saturating_sub(1);
        [
            ("faces", &self.faces, axis),
            ("v_edges", &self.v_edges, interior),
            ("h_edges", &self.h_edges, axis),
            ("vertices", &self.vertices, interior),
        ]
        .into_iter()
        .map(|(name, data, width)| StatArray {
            name,
            width,
            values: CellValues::Counts(data),
        })
        .collect()
    }
}

impl crate::delta::StatInspectMut for EulerHistogram {
    fn scalar_stats_mut(&mut self) -> Vec<(&'static str, &mut u64)> {
        vec![("n", &mut self.n)]
    }

    fn cell_stats_mut(&mut self) -> Vec<crate::delta::StatArrayMut<'_>> {
        use crate::delta::{CellValuesMut, StatArrayMut};
        [
            ("faces", &mut self.faces),
            ("v_edges", &mut self.v_edges),
            ("h_edges", &mut self.h_edges),
            ("vertices", &mut self.vertices),
        ]
        .into_iter()
        .map(|(name, data)| StatArrayMut {
            name,
            values: CellValuesMut::Counts(data),
        })
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geo::Extent;

    fn unit_grid(level: u32) -> Grid {
        Grid::new(level, Extent::unit()).unwrap()
    }

    /// Brute-force reference: objects whose cell block intersects the
    /// window's cell block.
    fn snapped_count(grid: &Grid, rects: &[Rect], window: &Rect) -> u64 {
        let (qc0, qc1, qr0, qr1) = grid.cell_range(window);
        rects
            .iter()
            .filter(|r| {
                let (c0, c1, r0, r1) = grid.cell_range(r);
                c0 <= qc1 && qc0 <= c1 && r0 <= qr1 && qr0 <= r1
            })
            .count() as u64
    }

    fn uniform(n: usize, seed: u64, side: f64) -> Vec<Rect> {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0 - side);
                let y = rng.random_range(0.0..1.0 - side);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..side),
                    y + rng.random_range(0.0..side),
                )
            })
            .collect()
    }

    #[test]
    fn single_spanning_object_counts_once() {
        // The motivating case: one object spanning 3×2 cells must count
        // exactly once from any window covering part of its block.
        let g = unit_grid(2); // 4×4 cells of side 0.25
        let rects = vec![Rect::new(0.05, 0.05, 0.70, 0.30)]; // cols 0..2, rows 0..1
        let h = EulerHistogram::build(g, &rects);
        assert_eq!(h.count_in_window(&Rect::new(0.0, 0.0, 1.0, 1.0)), 1);
        assert_eq!(h.count_in_window(&Rect::new(0.0, 0.0, 0.25, 0.25)), 1);
        assert_eq!(h.count_in_window(&Rect::new(0.5, 0.25, 0.75, 0.5)), 1);
        // A window over cells the object does not touch.
        assert_eq!(h.count_in_window(&Rect::new(0.80, 0.80, 0.95, 0.95)), 0);
    }

    #[test]
    fn matches_snapped_brute_force_on_random_data() {
        let rects = uniform(800, 90, 0.12);
        for level in [1u32, 3, 5] {
            let g = unit_grid(level);
            let h = EulerHistogram::build(g, &rects);
            for (qx0, qy0, qx1, qy1) in [
                (0.0, 0.0, 1.0, 1.0),
                (0.1, 0.2, 0.6, 0.7),
                (0.5, 0.5, 0.52, 0.52),
                (0.0, 0.9, 1.0, 1.0),
            ] {
                let q = Rect::new(qx0, qy0, qx1, qy1);
                assert_eq!(
                    h.count_in_window(&q),
                    snapped_count(&g, &rects, &q),
                    "level {level}, window {q:?}"
                );
            }
        }
    }

    #[test]
    fn exact_for_aligned_data_and_windows() {
        // Cell-aligned rects + cell-aligned window: the count is the true
        // intersecting-object count, not just a cell-resolution one.
        let g = unit_grid(2);
        let rects = vec![
            Rect::new(0.0, 0.0, 0.25, 0.25),
            Rect::new(0.25, 0.25, 0.75, 0.75),
            Rect::new(0.75, 0.75, 1.0, 1.0),
        ];
        let h = EulerHistogram::build(g, &rects);
        // Note: aligned rects *touch* cell boundaries; the half-open cell
        // assignment puts the shared boundary in the upper cell, so the
        // snapped blocks still reflect closed-intersection semantics.
        let q = Rect::new(0.25, 0.25, 0.5, 0.5);
        let expected = rects.iter().filter(|r| r.intersects(&q)).count() as u64;
        assert_eq!(h.count_in_window(&q), expected);
    }

    #[test]
    fn total_count_identity() {
        let rects = uniform(500, 91, 0.08);
        let h = EulerHistogram::build(unit_grid(4), &rects);
        assert_eq!(h.total_count(), 500);
        assert_eq!(h.dataset_len(), 500);
    }

    #[test]
    fn level_zero_degenerates_to_cardinality() {
        let rects = uniform(77, 92, 0.1);
        let h = EulerHistogram::build(unit_grid(0), &rects);
        assert_eq!(h.count_in_window(&Rect::new(0.4, 0.4, 0.6, 0.6)), 77);
    }

    #[test]
    fn empty_dataset() {
        let h = EulerHistogram::build(unit_grid(3), &[]);
        assert_eq!(h.total_count(), 0);
        assert_eq!(h.count_in_window(&Rect::new(0.0, 0.0, 0.5, 0.5)), 0);
    }

    #[test]
    fn bytes_roundtrip() {
        let rects = uniform(300, 93, 0.1);
        let h = EulerHistogram::build(unit_grid(4), &rects);
        let bytes = h.to_bytes();
        assert_eq!(bytes.len(), h.size_bytes());
        assert_eq!(EulerHistogram::from_bytes(&bytes).unwrap(), h);
        assert!(EulerHistogram::from_bytes(&bytes[..10]).is_err());
        let mut garbled = bytes.to_vec();
        garbled[0] ^= 0xFF;
        assert!(EulerHistogram::from_bytes(&garbled).is_err());
    }

    /// The Euler join is exact at cell resolution: it must equal the
    /// brute-force count of pairs whose cell blocks intersect.
    #[test]
    fn join_counts_block_intersecting_pairs_exactly() {
        let a = uniform(300, 95, 0.1);
        let b = uniform(400, 96, 0.08);
        for level in [0u32, 1, 3, 5] {
            let g = unit_grid(level);
            let (ha, hb) = (EulerHistogram::build(g, &a), EulerHistogram::build(g, &b));
            let mut exact = 0u64;
            for ra in &a {
                let (c0, c1, r0, r1) = g.cell_range(ra);
                for rb in &b {
                    let (d0, d1, s0, s1) = g.cell_range(rb);
                    if c0 <= d1 && d0 <= c1 && r0 <= s1 && s0 <= r1 {
                        exact += 1;
                    }
                }
            }
            assert_eq!(ha.intersection_pairs(&hb).unwrap(), exact, "level {level}");
            assert_eq!(hb.intersection_pairs(&ha).unwrap(), exact, "symmetry");
        }
    }

    /// On a fine grid the cell-resolution overcount shrinks and the join
    /// estimate approaches the true selectivity from above.
    #[test]
    fn join_estimate_close_on_fine_grid() {
        // Objects large relative to the cells, so snapping their blocks to
        // cell boundaries dilates each pair test only slightly.
        let a = uniform(700, 97, 0.1);
        let b = uniform(700, 98, 0.1);
        let actual = sj_sweep::sweep_join_selectivity(&a, &b);
        let g = unit_grid(9);
        let est = EulerHistogram::build(g, &a)
            .estimate(&EulerHistogram::build(g, &b))
            .unwrap()
            .selectivity;
        let err = (est - actual).abs() / actual;
        assert!(
            err < 0.15,
            "euler join err {err:.3} (est {est:.3e}, actual {actual:.3e})"
        );
        assert!(est >= actual * 0.999, "cell-resolution join overcounts");
    }

    #[test]
    fn join_grid_mismatch_is_an_error() {
        let rects = uniform(20, 99, 0.1);
        let h2 = EulerHistogram::build(unit_grid(2), &rects);
        let h3 = EulerHistogram::build(unit_grid(3), &rects);
        assert!(matches!(
            h2.estimate(&h3),
            Err(HistogramError::GridMismatch { .. })
        ));
    }

    /// Compare against GH's statistical window count: on the same grid,
    /// Euler is exact at cell resolution while GH approximates — but both
    /// should be close for small objects.
    #[test]
    fn euler_vs_gh_window_counts() {
        let rects = uniform(3000, 94, 0.02);
        let g = unit_grid(6);
        let euler = EulerHistogram::build(g, &rects);
        let gh = crate::GhHistogram::build(g, &rects);
        let q = Rect::new(0.2, 0.3, 0.7, 0.8);
        let exact = rects.iter().filter(|r| r.intersects(&q)).count() as f64;
        // Euler is exact for its snapped (cell-resolution) semantics and
        // slightly over the raw count: boundary-band objects that share a
        // cell with the window without touching it are included.
        assert_eq!(euler.count_in_window(&q), snapped_count(&g, &rects, &q));
        let euler_raw_err = (euler.count_in_window(&q) as f64 - exact) / exact;
        assert!(
            (0.0..0.12).contains(&euler_raw_err),
            "euler should overcount raw slightly: {euler_raw_err:.4}"
        );
        let gh_err = (gh.estimate_window_count(&q) - exact).abs() / exact;
        assert!(gh_err < 0.05, "gh err {gh_err:.4}");
    }
}
