//! The Geometric Histogram (GH) scheme — paper Section 3.2.
//!
//! The key observation (paper Figure 2): whenever two MBRs intersect, the
//! intersection is a rectangle with exactly four corners, and each corner
//! is either (a) a corner of one MBR falling inside the other MBR, or
//! (b) a horizontal edge of one MBR crossing a vertical edge of the other.
//! Estimating the total number of such *intersection points* between two
//! datasets and dividing by four yields the join result size.
//!
//! * [`GhBasicHistogram`] (Section 3.2.1, Eq. 4) keeps, per cell, integer
//!   counts: corners `C`, intersecting MBRs `I`, vertical edges `V`,
//!   horizontal edges `H`, and estimates
//!   `N = Σ C₁·I₂ + I₁·C₂ + V₁·H₂ + H₁·V₂`. It over/under-counts when a
//!   cell is coarse (Figure 4).
//! * [`GhHistogram`] (Section 3.2.2, Eq. 5 — the paper's headline scheme)
//!   replaces the coincidence assumption with a uniformity assumption
//!   *within* each cell, keeping fractional masses (Table 2): corner
//!   count `C`, clipped-area ratio `O`, clipped horizontal edge length
//!   over cell width `H`, clipped vertical edge length over cell height
//!   `V`, and estimates `IP = Σ C₁·O₂ + C₂·O₁ + H₁·V₂ + H₂·V₁`.

use crate::band::RowBanded;
use crate::grid::Grid;
use crate::mass::Mass;
use crate::{CorruptSection, HistogramError, SelectivityEstimate};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sj_geo::Rect;

const MAGIC_BASIC: u32 = 0x534a_4742; // "SJGB"
const MAGIC_REVISED: u32 = 0x534a_4748; // "SJGH"

/// Basic Geometric Histogram: per-cell integer counts (paper Eq. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct GhBasicHistogram {
    grid: Grid,
    // `pub(crate)` so `kernel::GhBasicView` can decode the counts into
    // SoA slices.
    pub(crate) n: u64,
    /// Corners of MBRs falling in each cell.
    pub(crate) c: Vec<u32>,
    /// MBRs intersecting each cell.
    pub(crate) i: Vec<u32>,
    /// Vertical MBR edges passing through each cell.
    pub(crate) v: Vec<u32>,
    /// Horizontal MBR edges passing through each cell.
    pub(crate) h: Vec<u32>,
}

impl GhBasicHistogram {
    /// Builds the basic GH histogram of `rects` on `grid`.
    #[must_use]
    pub fn build(grid: Grid, rects: &[Rect]) -> Self {
        Self::build_parallel(grid, rects, 1)
    }

    /// Builds like [`Self::build`] with grid rows banded across `threads`
    /// scoped worker threads and the band histograms merged; equal to the
    /// serial build for every thread count (see the row-band driver in `band.rs`).
    #[must_use]
    pub fn build_parallel(grid: Grid, rects: &[Rect], threads: usize) -> Self {
        crate::band::build_shard_merge(grid, rects, threads)
    }

    /// The grid the histogram was built on.
    #[must_use]
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Cardinality of the summarized dataset.
    #[must_use]
    pub fn dataset_len(&self) -> usize {
        usize::try_from(self.n).unwrap_or(usize::MAX)
    }

    /// Estimated number of intersection points against `other` (Eq. 4).
    ///
    /// Dispatches through the SoA kernel layer
    /// ([`crate::kernel::GhBasicView`], DESIGN.md §16); bit-identical to
    /// [`Self::intersection_points_scalar`].
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] on incompatible grids.
    pub fn intersection_points(&self, other: &Self) -> Result<f64, HistogramError> {
        crate::kernel::GhBasicView::new(self)
            .intersection_points(&crate::kernel::GhBasicView::new(other))
    }

    /// The retained scalar reference loop of
    /// [`Self::intersection_points`]: iterates every cell of the dense
    /// count vectors directly. Kept (and exercised by the
    /// `kernel_agreement` test plus the BENCH_5 `kernels` section) as the
    /// oracle the kernel path must match bit-for-bit.
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] on incompatible grids.
    pub fn intersection_points_scalar(&self, other: &Self) -> Result<f64, HistogramError> {
        if !self.grid.compatible(&other.grid) {
            return Err(HistogramError::GridMismatch {
                left_level: self.grid.level(),
                right_level: other.grid.level(),
            });
        }
        let mut total = 0.0f64;
        for idx in 0..self.c.len() {
            total += f64::from(self.c[idx]) * f64::from(other.i[idx])
                + f64::from(self.i[idx]) * f64::from(other.c[idx])
                + f64::from(self.v[idx]) * f64::from(other.h[idx])
                + f64::from(self.h[idx]) * f64::from(other.v[idx]);
        }
        Ok(total)
    }

    /// Scalar-path estimate: [`Self::intersection_points_scalar`] with the
    /// same `/ 4 / (N₁·N₂)` tail as [`Self::estimate`].
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] on incompatible grids.
    pub fn estimate_scalar(&self, other: &Self) -> Result<SelectivityEstimate, HistogramError> {
        let ip = self.intersection_points_scalar(other)?;
        #[allow(clippy::cast_precision_loss)]
        let denom = (self.n as f64) * (other.n as f64);
        let raw = if denom == 0.0 { 0.0 } else { ip / 4.0 / denom };
        Ok(SelectivityEstimate::from_selectivity(
            raw,
            self.dataset_len(),
            other.dataset_len(),
        ))
    }

    /// Estimates the join selectivity: intersection points / 4 / (N₁·N₂).
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] on incompatible grids.
    pub fn estimate(&self, other: &Self) -> Result<SelectivityEstimate, HistogramError> {
        let ip = self.intersection_points(other)?;
        #[allow(clippy::cast_precision_loss)]
        let denom = (self.n as f64) * (other.n as f64);
        let raw = if denom == 0.0 { 0.0 } else { ip / 4.0 / denom };
        Ok(SelectivityEstimate::from_selectivity(
            raw,
            self.dataset_len(),
            other.dataset_len(),
        ))
    }

    /// Serializes the histogram file.
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.size_bytes());
        buf.put_u32_le(MAGIC_BASIC);
        buf.put_u32_le(self.grid.level());
        let e = self.grid.extent().rect();
        for v in [e.xlo, e.ylo, e.xhi, e.yhi] {
            buf.put_f64_le(v);
        }
        buf.put_u64_le(self.n);
        for arr in [&self.c, &self.i, &self.v, &self.h] {
            for x in arr.iter() {
                buf.put_u32_le(*x);
            }
        }
        buf.freeze()
    }

    /// Deserializes a histogram file produced by [`Self::to_bytes`].
    ///
    /// # Errors
    /// Returns [`HistogramError::Corrupt`] on malformed input.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, HistogramError> {
        let corrupt = |s: CorruptSection, m: &str| HistogramError::corrupt(s, m);
        if data.remaining() < 48 {
            return Err(corrupt(CorruptSection::Header, "truncated header"));
        }
        if data.get_u32_le() != MAGIC_BASIC {
            return Err(corrupt(CorruptSection::Header, "bad magic"));
        }
        let level = data.get_u32_le();
        let coords = (
            data.get_f64_le(),
            data.get_f64_le(),
            data.get_f64_le(),
            data.get_f64_le(),
        );
        let grid = crate::grid::grid_from_header(level, coords)?;
        let n = data.get_u64_le();
        let cells = grid.num_cells();
        if data.remaining() != cells * 16 {
            return Err(corrupt(CorruptSection::Payload, "payload size mismatch"));
        }
        let read =
            |data: &mut &[u8]| -> Vec<u32> { (0..cells).map(|_| data.get_u32_le()).collect() };
        let c = read(&mut data);
        let i = read(&mut data);
        let v = read(&mut data);
        let h = read(&mut data);
        Ok(Self {
            grid,
            n,
            c,
            i,
            v,
            h,
        })
    }

    /// Histogram file size in bytes (level-dependent only).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        4 + 4 + 32 + 8 + self.c.len() * 16
    }
}

impl RowBanded for GhBasicHistogram {
    fn build_rows(grid: Grid, rects: &[Rect], lo: u32, hi: u32) -> Self {
        let cells = grid.num_cells();
        let bg = crate::kernel::BinGrid::new(&grid);
        let mut n = 0u64;
        let mut c = vec![0u32; cells];
        let mut i = vec![0u32; cells];
        let mut v = vec![0u32; cells];
        let mut h = vec![0u32; cells];
        for r in rects {
            // Every contribution of `r` lands in rows r0..=r1 (corner and
            // h-edge rows are r0 or r1), so rects outside the band are
            // skipped outright; the band owning the bottom row counts the
            // rect itself.
            let (c0, c1, r0, r1) = grid.cell_range(r);
            if r1 < lo || r0 >= hi {
                continue;
            }
            if (lo..hi).contains(&r0) {
                n += 1;
            }
            for corner in r.corners() {
                let (col, row) = grid.cell_of_point(corner);
                if (lo..hi).contains(&row) {
                    c[grid.flat_index(col, row)] += 1;
                }
            }
            crate::kernel::bin_count_block(&bg, (c0, c1), (r0.max(lo), r1.min(hi - 1)), &mut i);
            // Two vertical edges: each occupies one column, rows r0..=r1.
            for edge in r.v_edges() {
                let col = grid.col_of(edge.x);
                crate::kernel::bin_count_col(&bg, col, (r0.max(lo), r1.min(hi - 1)), &mut v);
            }
            // Two horizontal edges: each occupies one row, cols c0..=c1.
            for edge in r.h_edges() {
                let row = grid.row_of(edge.y);
                if (lo..hi).contains(&row) {
                    crate::kernel::bin_count_row(&bg, (c0, c1), row, &mut h);
                }
            }
        }
        Self {
            grid,
            n,
            c,
            i,
            v,
            h,
        }
    }

    fn merge_same_grid(&mut self, other: &Self) {
        self.n += other.n;
        for (into, from) in [
            (&mut self.c, &other.c),
            (&mut self.i, &other.i),
            (&mut self.v, &other.v),
            (&mut self.h, &other.h),
        ] {
            for (a, b) in into.iter_mut().zip(from) {
                *a += *b;
            }
        }
    }
}

impl crate::diff::StatInspect for GhBasicHistogram {
    fn scalar_stats(&self) -> Vec<(&'static str, u64)> {
        vec![("n", self.n)]
    }

    fn cell_stats(&self) -> Vec<crate::diff::StatArray<'_>> {
        use crate::diff::{CellValues, StatArray};
        let width = crate::grid::ix(self.grid.cells_per_axis());
        [
            ("c", &self.c),
            ("i", &self.i),
            ("v", &self.v),
            ("h", &self.h),
        ]
        .into_iter()
        .map(|(name, data)| StatArray {
            name,
            width,
            values: CellValues::Counts(data),
        })
        .collect()
    }
}

impl crate::delta::StatInspectMut for GhBasicHistogram {
    fn scalar_stats_mut(&mut self) -> Vec<(&'static str, &mut u64)> {
        vec![("n", &mut self.n)]
    }

    fn cell_stats_mut(&mut self) -> Vec<crate::delta::StatArrayMut<'_>> {
        use crate::delta::{CellValuesMut, StatArrayMut};
        [
            ("c", &mut self.c),
            ("i", &mut self.i),
            ("v", &mut self.v),
            ("h", &mut self.h),
        ]
        .into_iter()
        .map(|(name, data)| StatArrayMut {
            name,
            values: CellValuesMut::Counts(data),
        })
        .collect()
    }
}

/// Revised Geometric Histogram — the paper's headline "GH" scheme
/// (Table 2, Eq. 5).
///
/// ```
/// use sj_geo::{Extent, Rect};
/// use sj_histogram::{GhHistogram, Grid};
///
/// let grid = Grid::new(5, Extent::unit())?;
/// let streams = vec![Rect::new(0.10, 0.10, 0.30, 0.12)];
/// let roads = vec![Rect::new(0.12, 0.05, 0.14, 0.40)];
/// let hs = GhHistogram::build(grid, &streams);
/// let hr = GhHistogram::build(grid, &roads);
/// let est = hs.estimate(&hr)?;
/// assert!(est.pairs > 0.9 && est.pairs < 1.1, "one crossing pair");
/// # Ok::<(), sj_histogram::HistogramError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GhHistogram {
    grid: Grid,
    // `pub(crate)` so `kernel::GhView` can decode the masses into SoA
    // slices.
    pub(crate) n: u64,
    /// `C(i,j)`: number of MBR corner points falling in the cell.
    pub(crate) c: Vec<u32>,
    /// `O(i,j)`: Σ (area of MBR ∩ cell) / cell area, exactly accumulated.
    pub(crate) o: Vec<Mass>,
    /// `H(i,j)`: Σ (length of horizontal edge ∩ cell) / cell width.
    pub(crate) h: Vec<Mass>,
    /// `V(i,j)`: Σ (length of vertical edge ∩ cell) / cell height.
    pub(crate) v: Vec<Mass>,
}

impl GhHistogram {
    /// Builds the revised GH histogram of `rects` on `grid`.
    #[must_use]
    pub fn build(grid: Grid, rects: &[Rect]) -> Self {
        Self::build_parallel(grid, rects, 1)
    }

    /// Builds like [`Self::build`] with grid rows banded across `threads`
    /// scoped worker threads and the band histograms merged. Each cell's
    /// masses accumulate exactly (fixed point), so the result is
    /// *bit-identical* to the serial build for every thread count.
    #[must_use]
    pub fn build_parallel(grid: Grid, rects: &[Rect], threads: usize) -> Self {
        crate::band::build_shard_merge(grid, rects, threads)
    }

    /// The grid the histogram was built on.
    #[must_use]
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Cardinality of the summarized dataset.
    #[must_use]
    pub fn dataset_len(&self) -> usize {
        usize::try_from(self.n).unwrap_or(usize::MAX)
    }

    /// Estimated number of intersection points against `other` (Eq. 5):
    /// `IP = Σ C₁·O₂ + C₂·O₁ + H₁·V₂ + H₂·V₁`.
    ///
    /// Dispatches through the SoA kernel layer
    /// ([`crate::kernel::GhView`], DESIGN.md §16); bit-identical to
    /// [`Self::intersection_points_scalar`].
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] on incompatible grids.
    pub fn intersection_points(&self, other: &Self) -> Result<f64, HistogramError> {
        crate::kernel::GhView::new(self).intersection_points(&crate::kernel::GhView::new(other))
    }

    /// The retained scalar reference loop of
    /// [`Self::intersection_points`]: iterates every cell of the dense
    /// mass vectors directly, decoding the fixed-point masses on the fly.
    /// Kept (and exercised by the `kernel_agreement` test plus the
    /// BENCH_5 `kernels` section) as the oracle the kernel path must
    /// match bit-for-bit.
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] on incompatible grids.
    pub fn intersection_points_scalar(&self, other: &Self) -> Result<f64, HistogramError> {
        if !self.grid.compatible(&other.grid) {
            return Err(HistogramError::GridMismatch {
                left_level: self.grid.level(),
                right_level: other.grid.level(),
            });
        }
        let mut total = 0.0f64;
        for idx in 0..self.c.len() {
            total += f64::from(self.c[idx]) * other.o[idx].to_f64()
                + f64::from(other.c[idx]) * self.o[idx].to_f64()
                + self.h[idx].to_f64() * other.v[idx].to_f64()
                + other.h[idx].to_f64() * self.v[idx].to_f64();
        }
        Ok(total)
    }

    /// Scalar-path estimate: [`Self::intersection_points_scalar`] with the
    /// same `/ 4 / (N₁·N₂)` tail as [`Self::estimate`].
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] on incompatible grids.
    pub fn estimate_scalar(&self, other: &Self) -> Result<SelectivityEstimate, HistogramError> {
        let ip = self.intersection_points_scalar(other)?;
        #[allow(clippy::cast_precision_loss)]
        let denom = (self.n as f64) * (other.n as f64);
        let raw = if denom == 0.0 { 0.0 } else { ip / 4.0 / denom };
        Ok(SelectivityEstimate::from_selectivity(
            raw,
            self.dataset_len(),
            other.dataset_len(),
        ))
    }

    /// Estimates the join selectivity: `IP / 4 / (N₁·N₂)`.
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] on incompatible grids.
    pub fn estimate(&self, other: &Self) -> Result<SelectivityEstimate, HistogramError> {
        let ip = self.intersection_points(other)?;
        #[allow(clippy::cast_precision_loss)]
        let denom = (self.n as f64) * (other.n as f64);
        let raw = if denom == 0.0 { 0.0 } else { ip / 4.0 / denom };
        Ok(SelectivityEstimate::from_selectivity(
            raw,
            self.dataset_len(),
            other.dataset_len(),
        ))
    }

    /// **Extension beyond the paper** (its introduction's motivating
    /// scenario): estimates the number of intersecting pairs whose
    /// intersection falls inside `window`, without re-histogramming.
    ///
    /// The Eq. 5 sum is restricted to grid cells overlapping the window,
    /// each weighted by the fraction of the cell the window covers (the
    /// within-cell uniformity assumption GH already makes). A pair whose
    /// intersection straddles the window boundary contributes
    /// fractionally, in proportion to how many of its four intersection
    /// points land inside.
    ///
    /// **Extension beyond the paper**: estimates how many MBRs of the
    /// summarized dataset intersect a query rectangle — range-query
    /// selectivity (the problem of the paper's refs [14, 15]) answered
    /// from the *same* GH histogram file used for join estimation.
    ///
    /// The query window is treated as a one-element dataset: its per-cell
    /// GH masses (corners, clipped area, clipped edges) are computed on
    /// the fly and combined with the stored masses via Eq. 5, and the
    /// estimated intersection-point total is divided by four.
    #[must_use]
    pub fn estimate_window_count(&self, query: &Rect) -> f64 {
        let grid = self.grid();
        let cell_area = grid.cell_area();
        let cell_w = grid.cell_width();
        let cell_h = grid.cell_height();
        let mut total = 0.0f64;

        // C_q · O_ds: each query corner falling in a cell, against the
        // dataset's clipped-area mass there.
        for corner in query.corners() {
            let (col, row) = grid.cell_of_point(corner);
            total += self.o[grid.flat_index(col, row)].to_f64();
        }

        let (c0, c1, r0, r1) = grid.cell_range(query);
        for row in r0..=r1 {
            for col in c0..=c1 {
                let idx = grid.flat_index(col, row);
                let cell = grid.cell_rect(col, row);
                // C_ds · O_q.
                let o_q = query.intersection_area(&cell) / cell_area;
                total += f64::from(self.c[idx]) * o_q;
            }
        }
        // H_q · V_ds and V_q · H_ds: the query's 4 edges, clipped per cell.
        for edge in query.h_edges() {
            let row = grid.row_of(edge.y);
            for col in c0..=c1 {
                let idx = grid.flat_index(col, row);
                let h_q = edge.clipped_len(&grid.cell_rect(col, row)) / cell_w;
                total += h_q * self.v[idx].to_f64();
            }
        }
        for edge in query.v_edges() {
            let col = grid.col_of(edge.x);
            for row in r0..=r1 {
                let idx = grid.flat_index(col, row);
                let v_q = edge.clipped_len(&grid.cell_rect(col, row)) / cell_h;
                total += v_q * self.h[idx].to_f64();
            }
        }
        (total / 4.0).max(0.0)
    }

    /// Returns the estimated *pair count* (`IP_window / 4`) of the join
    /// restricted to `window`, not a selectivity — a windowed selectivity
    /// has no canonical denominator. See the type-level docs; this is the
    /// windowed variant of [`Self::estimate`].
    ///
    /// # Errors
    /// Returns [`HistogramError::GridMismatch`] on incompatible grids.
    pub fn estimate_pairs_in_window(
        &self,
        other: &Self,
        window: &Rect,
    ) -> Result<f64, HistogramError> {
        if !self.grid.compatible(&other.grid) {
            return Err(HistogramError::GridMismatch {
                left_level: self.grid.level(),
                right_level: other.grid.level(),
            });
        }
        let grid = self.grid();
        let cell_area = grid.cell_area();
        let (c0, c1, r0, r1) = grid.cell_range(window);
        let mut total = 0.0f64;
        for row in r0..=r1 {
            for col in c0..=c1 {
                let idx = grid.flat_index(col, row);
                let cell = grid.cell_rect(col, row);
                let weight = window.intersection_area(&cell) / cell_area;
                if weight == 0.0 {
                    continue;
                }
                total += weight
                    * (f64::from(self.c[idx]) * other.o[idx].to_f64()
                        + f64::from(other.c[idx]) * self.o[idx].to_f64()
                        + self.h[idx].to_f64() * other.v[idx].to_f64()
                        + other.h[idx].to_f64() * self.v[idx].to_f64());
            }
        }
        Ok((total / 4.0).max(0.0))
    }

    /// Serializes the histogram file.
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.size_bytes());
        buf.put_u32_le(MAGIC_REVISED);
        buf.put_u32_le(self.grid.level());
        let e = self.grid.extent().rect();
        for v in [e.xlo, e.ylo, e.xhi, e.yhi] {
            buf.put_f64_le(v);
        }
        buf.put_u64_le(self.n);
        for x in &self.c {
            buf.put_u32_le(*x);
        }
        for arr in [&self.o, &self.h, &self.v] {
            for x in arr.iter() {
                x.put_le(&mut buf);
            }
        }
        buf.freeze()
    }

    /// Deserializes a histogram file produced by [`Self::to_bytes`].
    ///
    /// # Errors
    /// Returns [`HistogramError::Corrupt`] on malformed input.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, HistogramError> {
        let corrupt = |s: CorruptSection, m: &str| HistogramError::corrupt(s, m);
        if data.remaining() < 48 {
            return Err(corrupt(CorruptSection::Header, "truncated header"));
        }
        if data.get_u32_le() != MAGIC_REVISED {
            return Err(corrupt(CorruptSection::Header, "bad magic"));
        }
        let level = data.get_u32_le();
        let coords = (
            data.get_f64_le(),
            data.get_f64_le(),
            data.get_f64_le(),
            data.get_f64_le(),
        );
        let grid = crate::grid::grid_from_header(level, coords)?;
        let n = data.get_u64_le();
        let cells = grid.num_cells();
        if data.remaining() != cells * (4 + 48) {
            return Err(corrupt(CorruptSection::Payload, "payload size mismatch"));
        }
        let c: Vec<u32> = (0..cells).map(|_| data.get_u32_le()).collect();
        let read =
            |data: &mut &[u8]| -> Vec<Mass> { (0..cells).map(|_| Mass::get_le(data)).collect() };
        let o = read(&mut data);
        let h = read(&mut data);
        let v = read(&mut data);
        Ok(Self {
            grid,
            n,
            c,
            o,
            h,
            v,
        })
    }

    /// Histogram file size in bytes (level-dependent only). Note: smaller
    /// than [`crate::PhHistogram::size_bytes`] at the same level — one of
    /// the paper's arguments for GH over PH.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        4 + 4 + 32 + 8 + self.c.len() * (4 + 48)
    }

    #[cfg(test)]
    pub(crate) fn masses(&self, grid: &Grid, col: u32, row: u32) -> (u32, f64, f64, f64) {
        let idx = grid.flat_index(col, row);
        (
            self.c[idx],
            self.o[idx].to_f64(),
            self.h[idx].to_f64(),
            self.v[idx].to_f64(),
        )
    }
}

impl RowBanded for GhHistogram {
    fn build_rows(grid: Grid, rects: &[Rect], lo: u32, hi: u32) -> Self {
        let cells = grid.num_cells();
        // Flattened grid geometry: cell sizes and row bases hoisted out of
        // the per-cell binning loops (same expressions, so bit-identical).
        let bg = crate::kernel::BinGrid::new(&grid);
        let mut n = 0u64;
        let mut c = vec![0u32; cells];
        let mut o = vec![Mass::ZERO; cells];
        let mut h = vec![Mass::ZERO; cells];
        let mut v = vec![Mass::ZERO; cells];
        for r in rects {
            let (c0, c1, r0, r1) = grid.cell_range(r);
            if r1 < lo || r0 >= hi {
                continue;
            }
            if (lo..hi).contains(&r0) {
                n += 1;
            }
            for corner in r.corners() {
                let (col, row) = grid.cell_of_point(corner);
                if (lo..hi).contains(&row) {
                    c[grid.flat_index(col, row)] += 1;
                }
            }
            crate::kernel::bin_gh_overlap(&bg, r, (c0, c1), (r0.max(lo), r1.min(hi - 1)), &mut o);
            for edge in r.h_edges() {
                let row = grid.row_of(edge.y);
                if (lo..hi).contains(&row) {
                    crate::kernel::bin_gh_hedge(&bg, &edge, (c0, c1), row, &mut h);
                }
            }
            for edge in r.v_edges() {
                let col = grid.col_of(edge.x);
                crate::kernel::bin_gh_vedge(&bg, &edge, col, (r0.max(lo), r1.min(hi - 1)), &mut v);
            }
        }
        Self {
            grid,
            n,
            c,
            o,
            h,
            v,
        }
    }

    fn merge_same_grid(&mut self, other: &Self) {
        self.n += other.n;
        for (a, b) in self.c.iter_mut().zip(&other.c) {
            *a += *b;
        }
        for (into, from) in [
            (&mut self.o, &other.o),
            (&mut self.h, &other.h),
            (&mut self.v, &other.v),
        ] {
            for (a, b) in into.iter_mut().zip(from) {
                *a += *b;
            }
        }
    }
}

impl crate::diff::StatInspect for GhHistogram {
    fn scalar_stats(&self) -> Vec<(&'static str, u64)> {
        vec![("n", self.n)]
    }

    fn cell_stats(&self) -> Vec<crate::diff::StatArray<'_>> {
        use crate::diff::{CellValues, StatArray};
        let width = crate::grid::ix(self.grid.cells_per_axis());
        let masses = |name, data| StatArray {
            name,
            width,
            values: CellValues::Masses(data),
        };
        vec![
            StatArray {
                name: "c",
                width,
                values: CellValues::Counts(&self.c),
            },
            masses("o", &self.o),
            masses("h", &self.h),
            masses("v", &self.v),
        ]
    }
}

impl crate::delta::StatInspectMut for GhHistogram {
    fn scalar_stats_mut(&mut self) -> Vec<(&'static str, &mut u64)> {
        vec![("n", &mut self.n)]
    }

    fn cell_stats_mut(&mut self) -> Vec<crate::delta::StatArrayMut<'_>> {
        use crate::delta::{CellValuesMut, StatArrayMut};
        vec![
            StatArrayMut {
                name: "c",
                values: CellValuesMut::Counts(&mut self.c),
            },
            StatArrayMut {
                name: "o",
                values: CellValuesMut::Masses(&mut self.o),
            },
            StatArrayMut {
                name: "h",
                values: CellValuesMut::Masses(&mut self.h),
            },
            StatArrayMut {
                name: "v",
                values: CellValuesMut::Masses(&mut self.v),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geo::Extent;

    fn unit_grid(level: u32) -> Grid {
        Grid::new(level, Extent::unit()).unwrap()
    }

    fn uniform(n: usize, seed: u64, side: f64) -> Vec<Rect> {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0 - side);
                let y = rng.random_range(0.0..1.0 - side);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..side),
                    y + rng.random_range(0.0..side),
                )
            })
            .collect()
    }

    /// Paper Figure 3 / Section 3.2.1: with gridding fine enough that the
    /// four intersection points of a pair fall in distinct cells, basic GH
    /// counts exactly 4 intersection points.
    #[test]
    fn basic_gh_counts_exactly_four_points_when_resolved() {
        let g = unit_grid(3); // 8×8 cells
        let a = vec![Rect::new(0.1, 0.1, 0.6, 0.6)];
        let b = vec![Rect::new(0.4, 0.4, 0.9, 0.9)];
        let ha = GhBasicHistogram::build(g, &a);
        let hb = GhBasicHistogram::build(g, &b);
        let ip = ha.intersection_points(&hb).unwrap();
        assert!(
            (ip - 4.0).abs() < 1e-12,
            "expected 4 intersection points, got {ip}"
        );
        let est = ha.estimate(&hb).unwrap();
        assert!((est.selectivity - 1.0).abs() < 1e-12);
        assert!((est.pairs - 1.0).abs() < 1e-12);
    }

    /// All four containment-flavored cases of Figure 2 behave: contained
    /// MBR pairs also produce 4 corner points.
    #[test]
    fn basic_gh_containment_case() {
        let g = unit_grid(3);
        let outer = vec![Rect::new(0.05, 0.05, 0.95, 0.95)];
        let inner = vec![Rect::new(0.3, 0.3, 0.55, 0.55)];
        let ho = GhBasicHistogram::build(g, &outer);
        let hi = GhBasicHistogram::build(g, &inner);
        // All 4 corners of inner fall inside outer; no edge crossings.
        let ip = ho.intersection_points(&hi).unwrap();
        assert!((ip - 4.0).abs() < 1e-12, "containment: got {ip}");
    }

    /// Paper Figure 4 (left pair): coarse cells make basic GH multiple- or
    /// false-count; refining the grid removes the inaccuracy.
    #[test]
    fn basic_gh_improves_with_level() {
        // Disjoint rects sharing a cell at level 1 but not intersecting:
        // false counting at the coarse level, correct at a fine level.
        let a = vec![Rect::new(0.02, 0.02, 0.1, 0.1)];
        let b = vec![Rect::new(0.3, 0.3, 0.4, 0.4)];
        let coarse_a = GhBasicHistogram::build(unit_grid(1), &a);
        let coarse_b = GhBasicHistogram::build(unit_grid(1), &b);
        let fine_a = GhBasicHistogram::build(unit_grid(5), &a);
        let fine_b = GhBasicHistogram::build(unit_grid(5), &b);
        let coarse = coarse_a.intersection_points(&coarse_b).unwrap();
        let fine = fine_a.intersection_points(&fine_b).unwrap();
        assert!(
            coarse > 0.0,
            "coarse grid falsely counts co-located disjoint MBRs"
        );
        assert!(
            (fine - 0.0).abs() < 1e-12,
            "fine grid resolves the false count"
        );
    }

    /// Revised GH mass conservation: Σ_cells C = 4N, Σ O = coverage ×
    /// num_cells, Σ H = 2·ΣW / cell width, Σ V = 2·ΣH / cell height.
    #[test]
    fn revised_gh_mass_conservation() {
        let rects = uniform(500, 31, 0.1);
        let g = unit_grid(4);
        let h = GhHistogram::build(g, &rects);
        let sum_c: u64 = h.c.iter().map(|&x| u64::from(x)).sum();
        assert_eq!(sum_c, 4 * rects.len() as u64);

        let sum_o: f64 = h.o.iter().map(|m| m.to_f64()).sum();
        let coverage: f64 = rects.iter().map(Rect::area).sum::<f64>() / g.cell_area();
        assert!((sum_o - coverage).abs() < 1e-9 * coverage.max(1.0));

        let sum_h: f64 = h.h.iter().map(|m| m.to_f64()).sum();
        let total_w: f64 = 2.0 * rects.iter().map(Rect::width).sum::<f64>() / g.cell_width();
        assert!((sum_h - total_w).abs() < 1e-9 * total_w.max(1.0));

        let sum_v: f64 = h.v.iter().map(|m| m.to_f64()).sum();
        let total_h: f64 = 2.0 * rects.iter().map(Rect::height).sum::<f64>() / g.cell_height();
        assert!((sum_v - total_h).abs() < 1e-9 * total_h.max(1.0));
    }

    /// Figure 5 semantics: for a single MBR clipped by a cell, O is the
    /// shaded-area ratio and H/V the clipped edge ratios.
    #[test]
    fn revised_gh_per_cell_masses() {
        let g = unit_grid(1); // 2×2 cells of side 0.5
                              // MBR overlapping cell (0,0) by [0.25..0.5] × [0.25..0.5].
        let r = vec![Rect::new(0.25, 0.25, 0.75, 0.75)];
        let h = GhHistogram::build(g, &r);
        let (c, o, hh, vv) = h.masses(&g, 0, 0);
        assert_eq!(c, 1, "one corner (0.25, 0.25) in cell (0,0)");
        assert!(
            (o - (0.25 * 0.25) / 0.25).abs() < 1e-12,
            "clipped area ratio"
        );
        // Only the bottom h-edge passes through cell (0,0); clipped length
        // 0.25 over cell width 0.5.
        assert!((hh - 0.5).abs() < 1e-12);
        assert!((vv - 0.5).abs() < 1e-12);
    }

    /// On uniform data, revised GH at a modest level is accurate.
    #[test]
    fn revised_gh_accuracy_on_uniform_data() {
        let a = uniform(3000, 32, 0.02);
        let b = uniform(3000, 33, 0.02);
        let actual = sj_sweep::sweep_join_selectivity(&a, &b);
        let g = unit_grid(5);
        let ha = GhHistogram::build(g, &a);
        let hb = GhHistogram::build(g, &b);
        let est = ha.estimate(&hb).unwrap().selectivity;
        let err = (est - actual).abs() / actual;
        assert!(
            err < 0.1,
            "revised GH error {err:.3} (est {est:.3e}, actual {actual:.3e})"
        );
    }

    /// The paper's headline property: revised GH errors decrease
    /// monotonically (in practice: are non-increasing within noise) as the
    /// grid level grows.
    #[test]
    fn revised_gh_error_shrinks_with_level() {
        let a = uniform(2000, 34, 0.05);
        let b = uniform(2000, 35, 0.05);
        let actual = sj_sweep::sweep_join_selectivity(&a, &b);
        let err_at = |level: u32| {
            let g = unit_grid(level);
            let ha = GhHistogram::build(g, &a);
            let hb = GhHistogram::build(g, &b);
            (ha.estimate(&hb).unwrap().selectivity - actual).abs() / actual
        };
        let e1 = err_at(1);
        let e4 = err_at(4);
        let e7 = err_at(7);
        assert!(
            e4 <= e1 * 1.05,
            "level 4 ({e4:.4}) should improve on level 1 ({e1:.4})"
        );
        assert!(
            e7 <= e4 * 1.05,
            "level 7 ({e7:.4}) should improve on level 4 ({e7:.4})"
        );
        assert!(
            e7 < 0.05,
            "revised GH at level 7 must be <5% on uniform data: {e7:.4}"
        );
    }

    /// Point ⋈ box joins: the degenerate-corner convention (4 coincident
    /// corners per point) keeps IP/4 unbiased.
    #[test]
    fn revised_gh_point_box_join() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(36);
        let pts: Vec<Rect> = (0..4000)
            .map(|_| {
                Rect::from_point(sj_geo::Point::new(
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                ))
            })
            .collect();
        let boxes = uniform(1500, 37, 0.08);
        let actual = sj_sweep::sweep_join_selectivity(&pts, &boxes);
        let g = unit_grid(5);
        let hp = GhHistogram::build(g, &pts);
        let hb = GhHistogram::build(g, &boxes);
        let est = hp.estimate(&hb).unwrap().selectivity;
        let err = (est - actual).abs() / actual;
        assert!(err < 0.1, "point⋈box GH error {err:.3}");
    }

    #[test]
    fn estimates_are_symmetric() {
        let a = uniform(800, 38, 0.05);
        let b = uniform(900, 39, 0.03);
        let g = unit_grid(4);
        let (ha, hb) = (GhHistogram::build(g, &a), GhHistogram::build(g, &b));
        let ab = ha.estimate(&hb).unwrap();
        let ba = hb.estimate(&ha).unwrap();
        assert!((ab.selectivity - ba.selectivity).abs() < 1e-15);
        let (ba_, bb_) = (
            GhBasicHistogram::build(g, &a),
            GhBasicHistogram::build(g, &b),
        );
        assert_eq!(
            ba_.estimate(&bb_).unwrap().selectivity,
            bb_.estimate(&ba_).unwrap().selectivity
        );
    }

    #[test]
    fn grid_mismatch_errors() {
        let a = uniform(10, 40, 0.1);
        let h2 = GhHistogram::build(unit_grid(2), &a);
        let h3 = GhHistogram::build(unit_grid(3), &a);
        assert!(matches!(
            h2.estimate(&h3),
            Err(HistogramError::GridMismatch { .. })
        ));
        let b2 = GhBasicHistogram::build(unit_grid(2), &a);
        let b3 = GhBasicHistogram::build(unit_grid(3), &a);
        assert!(matches!(
            b2.estimate(&b3),
            Err(HistogramError::GridMismatch { .. })
        ));
    }

    #[test]
    fn empty_datasets_estimate_zero() {
        let g = unit_grid(3);
        let he = GhHistogram::build(g, &[]);
        let hb = GhHistogram::build(g, &uniform(100, 41, 0.05));
        assert_eq!(he.estimate(&hb).unwrap().selectivity, 0.0);
    }

    #[test]
    fn bytes_roundtrip_both_variants() {
        let rects = uniform(300, 42, 0.06);
        let g = unit_grid(3);
        let basic = GhBasicHistogram::build(g, &rects);
        let bytes = basic.to_bytes();
        assert_eq!(bytes.len(), basic.size_bytes());
        assert_eq!(GhBasicHistogram::from_bytes(&bytes).unwrap(), basic);

        let revised = GhHistogram::build(g, &rects);
        let bytes = revised.to_bytes();
        assert_eq!(bytes.len(), revised.size_bytes());
        assert_eq!(GhHistogram::from_bytes(&bytes).unwrap(), revised);
    }

    #[test]
    fn from_bytes_rejects_corruption() {
        let rects = uniform(50, 43, 0.05);
        let h = GhHistogram::build(unit_grid(2), &rects);
        let bytes = h.to_bytes();
        assert!(GhHistogram::from_bytes(&bytes[..10]).is_err());
        let mut wrong_magic = bytes.to_vec();
        wrong_magic[0] ^= 1;
        assert!(GhHistogram::from_bytes(&wrong_magic).is_err());
        // A basic-GH file is not a revised-GH file.
        let basic = GhBasicHistogram::build(unit_grid(2), &rects);
        assert!(GhHistogram::from_bytes(&basic.to_bytes()).is_err());
    }

    /// The paper argues GH needs less space than PH at the same level.
    #[test]
    fn gh_smaller_than_ph() {
        let rects = uniform(100, 44, 0.05);
        let g = unit_grid(5);
        let gh = GhHistogram::build(g, &rects);
        let ph = crate::PhHistogram::build(g, &rects);
        assert!(gh.size_bytes() < ph.size_bytes());
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::parametric::{parametric_selectivity, ParametricInputs};
    use sj_geo::Extent;

    fn unit_grid(level: u32) -> Grid {
        Grid::new(level, Extent::unit()).unwrap()
    }

    fn uniform(n: usize, seed: u64, side: f64) -> Vec<Rect> {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0 - side);
                let y = rng.random_range(0.0..1.0 - side);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..side),
                    y + rng.random_range(0.0..side),
                )
            })
            .collect()
    }

    /// An algebraic identity worth pinning down: at level 0 the revised
    /// GH estimate collapses to the Aref–Samet parametric formula.
    /// With one cell, C = 4N, O = coverage, H = 2ΣW/extent width,
    /// V = 2ΣH/extent height, so
    /// IP/4 = N₁C₂ + N₂C₁ + N₁N₂(W̄₁H̄₂ + W̄₂H̄₁)/A — exactly Eq. 1.
    #[test]
    fn gh_level_zero_equals_parametric_model() {
        let a = uniform(700, 50, 0.05);
        let b = uniform(500, 51, 0.08);
        let g = unit_grid(0);
        let (ha, hb) = (GhHistogram::build(g, &a), GhHistogram::build(g, &b));
        let gh = ha.estimate(&hb).unwrap().selectivity;

        let stats = |v: &[Rect]| ParametricInputs {
            count: v.len(),
            coverage: v.iter().map(Rect::area).sum::<f64>(),
            avg_width: v.iter().map(Rect::width).sum::<f64>() / v.len() as f64,
            avg_height: v.iter().map(Rect::height).sum::<f64>() / v.len() as f64,
        };
        let pm = parametric_selectivity(&stats(&a), &stats(&b), 1.0);
        assert!(
            (gh - pm).abs() < 1e-12 * pm.max(1e-300),
            "GH level 0 ({gh:e}) must equal the parametric model ({pm:e})"
        );
    }

    /// The 12 relative positions of Figure 2, each resolved on a fine
    /// grid: basic GH must count exactly 4 intersection points per case.
    /// Coordinates avoid all grid lines at level 5 (multiples of 1/32).
    #[test]
    fn figure2_cases_all_count_four_points() {
        let g = unit_grid(5);
        let a = Rect::new(0.3001, 0.3001, 0.6002, 0.6002);
        // One representative per Figure 2 family (corner overlaps, edge
        // spans, crossings, containments), expressed as b-rects against a.
        let cases: Vec<(&str, Rect)> = vec![
            ("corner NE", Rect::new(0.5003, 0.5004, 0.8005, 0.8006)),
            ("corner NW", Rect::new(0.1007, 0.5008, 0.4009, 0.8011)),
            ("corner SE", Rect::new(0.5012, 0.1013, 0.8014, 0.4015)),
            ("corner SW", Rect::new(0.1016, 0.1017, 0.4018, 0.4019)),
            (
                "vertical band through a",
                Rect::new(0.4021, 0.2022, 0.5023, 0.7024),
            ),
            (
                "horizontal band through a",
                Rect::new(0.2025, 0.4026, 0.7027, 0.5028),
            ),
            (
                "edge notch from north",
                Rect::new(0.4029, 0.5031, 0.5032, 0.7033),
            ),
            (
                "edge notch from south",
                Rect::new(0.4034, 0.2035, 0.5036, 0.4037),
            ),
            (
                "edge notch from east",
                Rect::new(0.5038, 0.4039, 0.7041, 0.5042),
            ),
            (
                "edge notch from west",
                Rect::new(0.2043, 0.4044, 0.4045, 0.5046),
            ),
            ("b inside a", Rect::new(0.4047, 0.4048, 0.5049, 0.5051)),
            ("a inside b", Rect::new(0.2052, 0.2053, 0.7054, 0.7055)),
        ];
        for (name, b) in cases {
            assert!(a.intersects(&b), "fixture {name} must intersect");
            let ha = GhBasicHistogram::build(g, &[a]);
            let hb = GhBasicHistogram::build(g, &[b]);
            let ip = ha.intersection_points(&hb).unwrap();
            assert!(
                (ip - 4.0).abs() < 1e-12,
                "case {name:?}: expected 4 intersection points, got {ip}"
            );
        }
    }

    #[test]
    fn window_estimate_full_window_matches_global() {
        let a = uniform(2000, 52, 0.04);
        let b = uniform(2000, 53, 0.04);
        let g = unit_grid(5);
        let (ha, hb) = (GhHistogram::build(g, &a), GhHistogram::build(g, &b));
        let global = ha.estimate(&hb).unwrap().pairs;
        let windowed = ha
            .estimate_pairs_in_window(&hb, &Rect::new(0.0, 0.0, 1.0, 1.0))
            .unwrap();
        assert!(
            (global - windowed).abs() < 1e-9 * global.max(1.0),
            "full-extent window must reproduce the global estimate: {global} vs {windowed}"
        );
    }

    #[test]
    fn window_estimate_tracks_exact_windowed_count() {
        let a = uniform(3000, 54, 0.03);
        let b = uniform(3000, 55, 0.03);
        let g = unit_grid(6);
        let (ha, hb) = (GhHistogram::build(g, &a), GhHistogram::build(g, &b));
        let window = Rect::new(0.2, 0.2, 0.7, 0.6);
        let est = ha.estimate_pairs_in_window(&hb, &window).unwrap();
        // Exact: pairs whose intersection touches the window.
        let mut exact = 0u64;
        for ra in &a {
            for rb in &b {
                if let Some(i) = ra.intersection(rb) {
                    if i.intersects(&window) {
                        exact += 1;
                    }
                }
            }
        }
        let err = (est - exact as f64).abs() / exact as f64;
        assert!(
            err < 0.15,
            "windowed estimate err {err:.3} (est {est:.0}, exact {exact})"
        );
    }

    #[test]
    fn window_estimates_are_additive() {
        // Disjoint windows partitioning the extent must sum to the global
        // estimate (linearity of the weighted Eq. 5 sum).
        let a = uniform(1000, 56, 0.05);
        let b = uniform(1000, 57, 0.05);
        let g = unit_grid(4);
        let (ha, hb) = (GhHistogram::build(g, &a), GhHistogram::build(g, &b));
        let left = ha
            .estimate_pairs_in_window(&hb, &Rect::new(0.0, 0.0, 0.5, 1.0))
            .unwrap();
        let right = ha
            .estimate_pairs_in_window(&hb, &Rect::new(0.5, 0.0, 1.0, 1.0))
            .unwrap();
        let global = ha.estimate(&hb).unwrap().pairs;
        assert!(
            (left + right - global).abs() < 1e-9 * global.max(1.0),
            "window halves must sum to the whole: {left} + {right} vs {global}"
        );
    }

    #[test]
    fn window_outside_extent_estimates_zero() {
        let a = uniform(200, 58, 0.05);
        let g = unit_grid(3);
        let h = GhHistogram::build(g, &a);
        // A window that clips to zero overlap with every cell it maps to.
        let est = h
            .estimate_pairs_in_window(&h, &Rect::new(2.0, 2.0, 3.0, 3.0))
            .unwrap();
        assert_eq!(est, 0.0);
    }

    /// Affine invariance: scaling/translating the world (datasets +
    /// extent together) must not change GH estimates — the masses are all
    /// ratios to cell dimensions.
    #[test]
    fn gh_estimates_are_affine_invariant() {
        let a = uniform(800, 59, 0.05);
        let b = uniform(800, 60, 0.05);
        let g1 = unit_grid(4);
        let e1 = GhHistogram::build(g1, &a)
            .estimate(&GhHistogram::build(g1, &b))
            .unwrap()
            .selectivity;

        let transform = |r: &Rect| r.scaled(12.5, 0.25).translated(-40.0, 7.0);
        let a2: Vec<Rect> = a.iter().map(&transform).collect();
        let b2: Vec<Rect> = b.iter().map(&transform).collect();
        let world = Extent::new(transform(&Rect::new(0.0, 0.0, 1.0, 1.0)));
        let g2 = Grid::new(4, world).unwrap();
        let e2 = GhHistogram::build(g2, &a2)
            .estimate(&GhHistogram::build(g2, &b2))
            .unwrap()
            .selectivity;
        assert!(
            (e1 - e2).abs() < 1e-9 * e1.max(1e-300),
            "affine transform changed the estimate: {e1:e} vs {e2:e}"
        );
    }
}

#[cfg(test)]
mod window_count_tests {
    use super::*;
    use sj_geo::Extent;

    fn uniform(n: usize, seed: u64, side: f64) -> Vec<Rect> {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0 - side);
                let y = rng.random_range(0.0..1.0 - side);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..side),
                    y + rng.random_range(0.0..side),
                )
            })
            .collect()
    }

    #[test]
    fn window_count_tracks_exact_range_query() {
        let rects = uniform(5000, 61, 0.03);
        let g = Grid::new(6, Extent::unit()).unwrap();
        let h = GhHistogram::build(g, &rects);
        for (qx0, qy0, qx1, qy1) in [
            (0.1, 0.1, 0.4, 0.3),
            (0.5, 0.5, 0.9, 0.95),
            (0.0, 0.0, 1.0, 1.0),
        ] {
            let q = Rect::new(qx0, qy0, qx1, qy1);
            let est = h.estimate_window_count(&q);
            let exact = rects.iter().filter(|r| r.intersects(&q)).count() as f64;
            let err = (est - exact).abs() / exact;
            assert!(
                err < 0.05,
                "window {q:?}: est {est:.0} vs exact {exact} (err {err:.3})"
            );
        }
    }

    #[test]
    fn window_count_on_clustered_point_data() {
        // Degenerate MBRs: the window count degenerates to point counting.
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(62);
        let pts: Vec<Rect> = (0..4000)
            .map(|_| {
                let x: f64 = rng.random_range(0.0..1.0);
                Rect::from_point(sj_geo::Point::new(x * x, rng.random_range(0.0..1.0)))
            })
            .collect();
        let g = Grid::new(7, Extent::unit()).unwrap();
        let h = GhHistogram::build(g, &pts);
        let q = Rect::new(0.0, 0.2, 0.25, 0.8);
        let est = h.estimate_window_count(&q);
        let exact = pts.iter().filter(|r| r.intersects(&q)).count() as f64;
        let err = (est - exact).abs() / exact;
        assert!(
            err < 0.05,
            "point window count err {err:.3} ({est:.0} vs {exact})"
        );
    }

    #[test]
    fn window_count_of_empty_region_is_small() {
        let rects = vec![Rect::new(0.8, 0.8, 0.9, 0.9); 50];
        let g = Grid::new(5, Extent::unit()).unwrap();
        let h = GhHistogram::build(g, &rects);
        let est = h.estimate_window_count(&Rect::new(0.0, 0.0, 0.2, 0.2));
        assert!(est < 1.0, "empty region should estimate ~0, got {est}");
    }

    #[test]
    fn window_count_whole_extent_counts_everything() {
        let rects = uniform(800, 63, 0.05);
        let g = Grid::new(4, Extent::unit()).unwrap();
        let h = GhHistogram::build(g, &rects);
        let est = h.estimate_window_count(&Rect::new(0.0, 0.0, 1.0, 1.0));
        // Whole-extent query intersects every MBR; boundary mass makes the
        // estimate approximate but close.
        let err = (est - 800.0).abs() / 800.0;
        assert!(err < 0.05, "whole-extent count {est:.0} (err {err:.3})");
    }
}

/// Sparse histogram-file format for [`GhHistogram`].
///
/// The paper observes that the (dense) histogram file size depends only
/// on the grid level and spikes build times once it no longer fits in
/// memory. On clustered data most cells are empty at high levels, so a
/// sparse encoding — only cells with non-zero mass, keyed by flat index —
/// can be far smaller. Estimation still runs on the dense in-memory form;
/// sparsity is purely a storage/interchange concern.
const MAGIC_SPARSE: u32 = 0x534a_4753; // "SJGS"

impl GhHistogram {
    /// Number of cells with any non-zero mass.
    #[must_use]
    pub fn occupied_cells(&self) -> usize {
        (0..self.c.len())
            .filter(|&i| {
                self.c[i] != 0
                    || !self.o[i].is_zero()
                    || !self.h[i].is_zero()
                    || !self.v[i].is_zero()
            })
            .count()
    }

    /// Serializes only occupied cells. Decodable by
    /// [`Self::from_sparse_bytes`]; byte-for-byte equivalent histograms
    /// result.
    #[must_use]
    pub fn to_sparse_bytes(&self) -> Bytes {
        let occupied = self.occupied_cells();
        let mut buf = BytesMut::with_capacity(56 + occupied * 56);
        buf.put_u32_le(MAGIC_SPARSE);
        buf.put_u32_le(self.grid.level());
        let e = self.grid.extent().rect();
        for val in [e.xlo, e.ylo, e.xhi, e.yhi] {
            buf.put_f64_le(val);
        }
        buf.put_u64_le(self.n);
        buf.put_u64_le(occupied as u64);
        for i in 0..self.c.len() {
            if self.c[i] != 0
                || !self.o[i].is_zero()
                || !self.h[i].is_zero()
                || !self.v[i].is_zero()
            {
                // Cell counts top out at 4^MAX_LEVEL ≈ 4.2 M, well inside u32.
                #[allow(clippy::cast_possible_truncation)]
                // sj-lint: allow(cast, cell index < 4^MAX_LEVEL < 2^32)
                buf.put_u32_le(i as u32);
                buf.put_u32_le(self.c[i]);
                self.o[i].put_le(&mut buf);
                self.h[i].put_le(&mut buf);
                self.v[i].put_le(&mut buf);
            }
        }
        buf.freeze()
    }

    /// Size of the sparse encoding in bytes (data-dependent, unlike
    /// [`Self::size_bytes`]).
    #[must_use]
    pub fn sparse_size_bytes(&self) -> usize {
        4 + 4 + 32 + 8 + 8 + self.occupied_cells() * (4 + 4 + 48)
    }

    /// Decodes a sparse histogram file produced by
    /// [`Self::to_sparse_bytes`].
    ///
    /// # Errors
    /// Returns [`HistogramError::Corrupt`] on malformed input.
    pub fn from_sparse_bytes(mut data: &[u8]) -> Result<Self, HistogramError> {
        let corrupt = |s: CorruptSection, m: &str| HistogramError::corrupt(s, m);
        if data.remaining() < 56 {
            return Err(corrupt(CorruptSection::Header, "truncated header"));
        }
        if data.get_u32_le() != MAGIC_SPARSE {
            return Err(corrupt(CorruptSection::Header, "bad magic"));
        }
        let level = data.get_u32_le();
        let coords = (
            data.get_f64_le(),
            data.get_f64_le(),
            data.get_f64_le(),
            data.get_f64_le(),
        );
        let grid = crate::grid::grid_from_header(level, coords)?;
        let n = data.get_u64_le();
        let occupied = data.get_u64_le();
        let cells = grid.num_cells();
        if occupied > cells as u64 {
            return Err(corrupt(
                CorruptSection::Payload,
                "occupied count exceeds cell count",
            ));
        }
        let occupied_cells = usize::try_from(occupied)
            .map_err(|_| corrupt(CorruptSection::Payload, "occupied count overflows usize"))?;
        if data.remaining() != occupied_cells * 56 {
            return Err(corrupt(CorruptSection::Payload, "payload size mismatch"));
        }
        let mut c = vec![0u32; cells];
        let mut o = vec![Mass::ZERO; cells];
        let mut h = vec![Mass::ZERO; cells];
        let mut v = vec![Mass::ZERO; cells];
        let mut last_idx: Option<u32> = None;
        for _ in 0..occupied {
            let idx = data.get_u32_le();
            let slot = crate::grid::ix(idx);
            let (Some(cs), Some(os), Some(hs), Some(vs)) = (
                c.get_mut(slot),
                o.get_mut(slot),
                h.get_mut(slot),
                v.get_mut(slot),
            ) else {
                return Err(corrupt(CorruptSection::Payload, "cell index out of range"));
            };
            if last_idx.is_some_and(|prev| idx <= prev) {
                return Err(corrupt(
                    CorruptSection::Payload,
                    "cell indices must be strictly increasing",
                ));
            }
            last_idx = Some(idx);
            *cs = data.get_u32_le();
            *os = Mass::get_le(&mut data);
            *hs = Mass::get_le(&mut data);
            *vs = Mass::get_le(&mut data);
        }
        Ok(Self {
            grid,
            n,
            c,
            o,
            h,
            v,
        })
    }
}

#[cfg(test)]
mod sparse_tests {
    use super::*;
    use sj_geo::{Extent, Point};

    fn clustered(n: usize, seed: u64) -> Vec<Rect> {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = 0.3 + rng.random_range(0.0..0.05);
                let y = 0.6 + rng.random_range(0.0..0.05);
                Rect::centered(Point::new(x, y), 0.002, 0.002)
            })
            .collect()
    }

    #[test]
    fn sparse_roundtrip_is_exact() {
        let rects = clustered(400, 80);
        let g = Grid::new(7, Extent::unit()).unwrap();
        let h = GhHistogram::build(g, &rects);
        let bytes = h.to_sparse_bytes();
        assert_eq!(bytes.len(), h.sparse_size_bytes());
        let back = GhHistogram::from_sparse_bytes(&bytes).unwrap();
        assert_eq!(back, h, "sparse roundtrip must be lossless");
    }

    #[test]
    fn sparse_much_smaller_on_clustered_data_at_high_levels() {
        let rects = clustered(1000, 81);
        let g = Grid::new(8, Extent::unit()).unwrap();
        let h = GhHistogram::build(g, &rects);
        let dense = h.size_bytes();
        let sparse = h.sparse_size_bytes();
        assert!(
            sparse * 20 < dense,
            "clustered data at level 8 should compress >20x: {sparse} vs {dense}"
        );
    }

    #[test]
    fn sparse_larger_per_cell_when_fully_occupied() {
        // Dense uniform data occupying every cell: sparse pays the index
        // overhead and loses — the tradeoff is data-dependent by design.
        let g = Grid::new(2, Extent::unit()).unwrap();
        let h = GhHistogram::build(g, &[Rect::new(0.0, 0.0, 1.0, 1.0)]);
        assert_eq!(h.occupied_cells(), g.num_cells());
        assert!(h.sparse_size_bytes() > h.size_bytes());
    }

    #[test]
    fn sparse_rejects_corruption() {
        let rects = clustered(50, 82);
        let g = Grid::new(4, Extent::unit()).unwrap();
        let h = GhHistogram::build(g, &rects);
        let bytes = h.to_sparse_bytes();
        assert!(GhHistogram::from_sparse_bytes(&bytes[..bytes.len() - 4]).is_err());
        assert!(GhHistogram::from_sparse_bytes(&bytes[..20]).is_err());
        let mut bad_magic = bytes.to_vec();
        bad_magic[0] ^= 1;
        assert!(GhHistogram::from_sparse_bytes(&bad_magic).is_err());
        // A dense file is not a sparse file and vice versa.
        assert!(GhHistogram::from_sparse_bytes(&h.to_bytes()).is_err());
        assert!(GhHistogram::from_bytes(&h.to_sparse_bytes()).is_err());
    }

    #[test]
    fn sparse_rejects_out_of_order_indices() {
        let rects = clustered(50, 83);
        let g = Grid::new(3, Extent::unit()).unwrap();
        let h = GhHistogram::build(g, &rects);
        let mut bytes = h.to_sparse_bytes().to_vec();
        // Duplicate the first cell record over the second (indices no
        // longer strictly increasing).
        let header = 56;
        let record = 56;
        if bytes.len() >= header + 2 * record {
            let (first, rest) = bytes.split_at_mut(header + record);
            rest[..record].copy_from_slice(&first[header..header + record]);
            assert!(GhHistogram::from_sparse_bytes(&bytes).is_err());
        }
    }

    #[test]
    fn empty_histogram_sparse_roundtrip() {
        let g = Grid::new(3, Extent::unit()).unwrap();
        let h = GhHistogram::build(g, &[]);
        assert_eq!(h.occupied_cells(), 0);
        let back = GhHistogram::from_sparse_bytes(&h.to_sparse_bytes()).unwrap();
        assert_eq!(back, h);
    }
}
