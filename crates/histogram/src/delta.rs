//! Signed histogram deltas: incremental statistics maintenance with
//! exact equivalence to a full rebuild.
//!
//! Every per-cell statistic of the four families is a pure sum over the
//! input MBRs, accumulated exactly (integer counters or fixed-point
//! [`Mass`]). Sums form a group under exact addition, so a batch of
//! mutations has a well-defined *signed* summary:
//!
//! ```text
//! Δ = build(inserts) − build(deletes)
//! ```
//!
//! and applying it to an existing histogram reproduces the full rebuild
//! bit-for-bit:
//!
//! ```text
//! apply_delta(build(D), Δ)  ≡  build(D ∪ Δ⁺ ∖ Δ⁻)
//! ```
//!
//! — the identity `sj-lint verify-delta` proves dynamically across the
//! same matrix as `verify-merge`. The insert and delete sides are built
//! with the ordinary `band.rs` shard driver (an insert batch is just
//! another shard), then differenced statistic-by-statistic through the
//! same introspection order `first_divergence` walks.
//!
//! Signedness is what makes deletes safe: unsigned `u32` cell counters
//! widen to `i64` inside the delta, and application range-checks every
//! counter and scalar *before* writing anything, so a delete-heavy batch
//! that would underflow yields a typed
//! [`HistogramError::DeltaOutOfRange`] and leaves the histogram
//! untouched — never a debug-panic or a silent wrap.
//!
//! Deltas persist in their own CRC32-framed `.hdelta` envelope,
//! structured exactly like the version-2 `.hist` envelope and likewise
//! covered by the r7 persistence fingerprint:
//!
//! ```text
//! magic "SJHD" u32 | version u32 | kind tag u32 | payload_len u64 | payload | crc32 u32
//! ```

use crate::band::{build_shard_merge, RowBanded};
use crate::crc::crc32;
use crate::diff::{CellValues, StatInspect};
use crate::mass::Mass;
use crate::{
    CorruptSection, EulerHistogram, GhBasicHistogram, GhHistogram, Grid, HistogramError,
    HistogramKind, PhHistogram, SpatialHistogram,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sj_geo::Rect;

/// Envelope magic for persisted histogram deltas.
pub const DELTA_MAGIC: u32 = 0x534a_4844; // "SJHD"
/// Delta envelope format version; bump on incompatible layout changes.
pub const DELTA_VERSION: u32 = 1;

/// Mutable twins of [`crate::diff::CellValues`]: the per-cell statistic
/// arrays exposed for in-place delta application.
pub(crate) enum CellValuesMut<'a> {
    /// Integer counters.
    Counts(&'a mut [u32]),
    /// Exact fixed-point masses.
    Masses(&'a mut [Mass]),
}

/// One named mutable per-cell statistic array.
pub(crate) struct StatArrayMut<'a> {
    pub(crate) name: &'static str,
    pub(crate) values: CellValuesMut<'a>,
}

/// Mutable statistics introspection, implemented by each family next to
/// its read-only [`StatInspect`] impl and in the identical order. Delta
/// application walks both views in lockstep: the read-only view for the
/// pre-flight range check, the mutable view for the commit.
pub(crate) trait StatInspectMut {
    /// Dataset-level scalar statistics, mutably, in serialization order.
    fn scalar_stats_mut(&mut self) -> Vec<(&'static str, &mut u64)>;
    /// Per-cell statistic arrays, mutably, in serialization order.
    fn cell_stats_mut(&mut self) -> Vec<StatArrayMut<'_>>;
}

/// Signed per-array delta values. Counts widen from the histograms'
/// `u32` to `i64` so a delete-side excess is representable instead of
/// underflowing; masses are natively signed.
#[derive(Debug, Clone, PartialEq)]
enum DeltaValues {
    /// Signed counter updates.
    Counts(Vec<i64>),
    /// Signed mass updates.
    Masses(Vec<Mass>),
}

/// One named per-cell delta array, positionally matching the family's
/// [`StatInspect::cell_stats`] order.
#[derive(Debug, Clone, PartialEq)]
struct DeltaArray {
    name: &'static str,
    values: DeltaValues,
}

/// A signed batch update to one histogram: the exact statistic-wise
/// difference `build(inserts) − build(deletes)` for a fixed kind and
/// grid.
///
/// # Examples
/// ```
/// use sj_geo::{Extent, Rect};
/// use sj_histogram::{Grid, GhHistogram, HistogramDelta, SpatialHistogram};
///
/// let grid = Grid::new(3, Extent::unit())?;
/// let base = vec![
///     Rect::new(0.10, 0.10, 0.22, 0.18),
///     Rect::new(0.55, 0.60, 0.70, 0.71),
/// ];
/// let ins = vec![Rect::new(0.30, 0.05, 0.42, 0.30)];
/// let del = vec![base[1]];
///
/// // Incremental maintenance equals a full rebuild, bit for bit.
/// let mut maintained = GhHistogram::build_from(grid, &base);
/// maintained.apply_delta(&GhHistogram::build_delta(grid, &ins, &del))?;
/// let rebuilt = GhHistogram::build_from(grid, &[base[0], ins[0]]);
/// assert_eq!(maintained.to_bytes(), rebuilt.to_bytes());
/// # Ok::<(), sj_histogram::HistogramError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramDelta {
    kind: HistogramKind,
    grid: Grid,
    inserts: u64,
    deletes: u64,
    /// Signed deltas of the family's `u64` scalars, in serialization
    /// order. `i128` holds the full ± range of a `u64` difference.
    scalars: Vec<(&'static str, i128)>,
    arrays: Vec<DeltaArray>,
}

impl HistogramDelta {
    /// Builds the signed delta of an insert/delete batch (serial).
    #[must_use]
    pub fn build(kind: HistogramKind, grid: Grid, inserts: &[Rect], deletes: &[Rect]) -> Self {
        Self::build_parallel(kind, grid, inserts, deletes, 1)
    }

    /// Builds the signed delta of an insert/delete batch, driving both
    /// sides through the row-band shard driver with `threads` workers —
    /// bit-identical to the serial build at every thread count.
    #[must_use]
    pub fn build_parallel(
        kind: HistogramKind,
        grid: Grid,
        inserts: &[Rect],
        deletes: &[Rect],
        threads: usize,
    ) -> Self {
        match kind {
            HistogramKind::Ph => build_impl::<PhHistogram>(kind, grid, inserts, deletes, threads),
            HistogramKind::GhBasic => {
                build_impl::<GhBasicHistogram>(kind, grid, inserts, deletes, threads)
            }
            HistogramKind::Gh => build_impl::<GhHistogram>(kind, grid, inserts, deletes, threads),
            HistogramKind::Euler => {
                build_impl::<EulerHistogram>(kind, grid, inserts, deletes, threads)
            }
        }
    }

    /// The family this delta updates.
    #[must_use]
    pub fn kind(&self) -> HistogramKind {
        self.kind
    }

    /// The grid this delta was built on.
    #[must_use]
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Number of rectangles in the insert batch.
    #[must_use]
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Number of rectangles in the delete batch.
    #[must_use]
    pub fn deletes(&self) -> u64 {
        self.deletes
    }

    /// Net dataset cardinality change (`inserts − deletes`).
    #[must_use]
    pub fn net_rects(&self) -> i64 {
        i64::try_from(i128::from(self.inserts) - i128::from(self.deletes)).unwrap_or(i64::MAX)
    }

    /// Whether every statistic delta is zero (applying it is a no-op).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scalars.iter().all(|(_, d)| *d == 0)
            && self.arrays.iter().all(|a| match &a.values {
                DeltaValues::Counts(c) => c.iter().all(|d| *d == 0),
                DeltaValues::Masses(m) => m.iter().all(|d| d.is_zero()),
            })
    }

    /// Size of the native serialized delta in bytes.
    #[must_use]
    pub fn space_bytes(&self) -> usize {
        self.to_bytes().len()
    }

    /// Serializes the native (un-enveloped) delta payload: grid header,
    /// batch sizes, then scalars and arrays in introspection order.
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32_le(self.grid.level());
        let e = self.grid.extent().rect();
        for v in [e.xlo, e.ylo, e.xhi, e.yhi] {
            buf.put_f64_le(v);
        }
        buf.put_u64_le(self.inserts);
        buf.put_u64_le(self.deletes);
        buf.put_u32_le(u32::try_from(self.scalars.len()).unwrap_or(u32::MAX));
        for (_, d) in &self.scalars {
            buf.put_slice(&d.to_le_bytes());
        }
        buf.put_u32_le(u32::try_from(self.arrays.len()).unwrap_or(u32::MAX));
        for array in &self.arrays {
            match &array.values {
                DeltaValues::Counts(values) => {
                    buf.put_u8(0);
                    buf.put_u64_le(values.len() as u64);
                    for d in values {
                        buf.put_i64_le(*d);
                    }
                }
                DeltaValues::Masses(values) => {
                    buf.put_u8(1);
                    buf.put_u64_le(values.len() as u64);
                    for d in values {
                        d.put_le(&mut buf);
                    }
                }
            }
        }
        buf.freeze()
    }

    /// Decodes a native delta payload of a known kind, validating the
    /// statistic shapes (names, representations, array lengths) against
    /// the family's layout on the decoded grid.
    ///
    /// # Errors
    /// [`HistogramError::Corrupt`] on truncation, a bad grid header, or
    /// a shape that does not match the family's statistics.
    pub fn from_bytes(kind: HistogramKind, mut data: &[u8]) -> Result<Self, HistogramError> {
        let corrupt = |s: CorruptSection, m: String| HistogramError::corrupt(s, m);
        if data.remaining() < 60 {
            return Err(corrupt(
                CorruptSection::Header,
                format!(
                    "truncated delta header: {} bytes, need 60",
                    data.remaining()
                ),
            ));
        }
        let level = data.get_u32_le();
        let coords = (
            data.get_f64_le(),
            data.get_f64_le(),
            data.get_f64_le(),
            data.get_f64_le(),
        );
        let grid = crate::grid::grid_from_header(level, coords)?;
        let inserts = data.get_u64_le();
        let deletes = data.get_u64_le();
        let n_scalars = data.get_u32_le();

        // The expected shape is fixed by (kind, grid): take it from an
        // empty histogram of the family.
        let shape = crate::build_histogram(kind, grid, &[]);
        let (expected_scalars, expected_arrays) = inspect_shape(shape.as_ref());

        if crate::grid::ix(n_scalars) != expected_scalars.len() {
            return Err(corrupt(
                CorruptSection::Payload,
                format!(
                    "delta declares {n_scalars} scalars but {} has {}",
                    kind,
                    expected_scalars.len()
                ),
            ));
        }
        if data.remaining() < expected_scalars.len() * 16 + 4 {
            return Err(corrupt(
                CorruptSection::Payload,
                "truncated delta scalar section".to_string(),
            ));
        }
        let scalars = expected_scalars
            .iter()
            .map(|name| {
                let mut raw = [0u8; 16];
                data.copy_to_slice(&mut raw);
                (*name, i128::from_le_bytes(raw))
            })
            .collect();

        let n_arrays = data.get_u32_le();
        if crate::grid::ix(n_arrays) != expected_arrays.len() {
            return Err(corrupt(
                CorruptSection::Payload,
                format!(
                    "delta declares {n_arrays} cell arrays but {} has {}",
                    kind,
                    expected_arrays.len()
                ),
            ));
        }
        let mut arrays = Vec::with_capacity(expected_arrays.len());
        for (name, is_mass, expected_len) in expected_arrays {
            if data.remaining() < 9 {
                return Err(corrupt(
                    CorruptSection::Payload,
                    format!("truncated delta array header for `{name}`"),
                ));
            }
            let tag = data.get_u8();
            let len = data.get_u64_le();
            if (tag == 1) != is_mass {
                return Err(corrupt(
                    CorruptSection::Payload,
                    format!("delta array `{name}` has representation tag {tag}"),
                ));
            }
            if len != expected_len as u64 {
                return Err(corrupt(
                    CorruptSection::Payload,
                    format!("delta array `{name}` has {len} cells, expected {expected_len}"),
                ));
            }
            let elem = if is_mass { 16 } else { 8 };
            if data.remaining() < expected_len * elem {
                return Err(corrupt(
                    CorruptSection::Payload,
                    format!("truncated delta array `{name}`"),
                ));
            }
            let values = if is_mass {
                DeltaValues::Masses((0..expected_len).map(|_| Mass::get_le(&mut data)).collect())
            } else {
                DeltaValues::Counts((0..expected_len).map(|_| data.get_i64_le()).collect())
            };
            arrays.push(DeltaArray { name, values });
        }
        if data.has_remaining() {
            return Err(corrupt(
                CorruptSection::Payload,
                format!(
                    "{} trailing bytes after the delta payload",
                    data.remaining()
                ),
            ));
        }
        Ok(Self {
            kind,
            grid,
            inserts,
            deletes,
            scalars,
            arrays,
        })
    }

    /// Serializes into the versioned kind-tagged `.hdelta` envelope
    /// decodable by [`load_delta`]: a 20-byte header (magic, version,
    /// kind tag, payload length), the native payload, and a trailing
    /// CRC32 over everything before it — the same framing as the
    /// version-2 `.hist` envelope.
    #[must_use]
    pub fn persist(&self) -> Bytes {
        let payload = self.to_bytes();
        let mut buf = BytesMut::with_capacity(24 + payload.len());
        buf.put_u32_le(DELTA_MAGIC);
        buf.put_u32_le(DELTA_VERSION);
        buf.put_u32_le(self.kind.tag());
        buf.put_u64_le(payload.len() as u64);
        buf.put_slice(&payload);
        let checksum = crc32(&buf);
        buf.put_u32_le(checksum);
        buf.freeze()
    }
}

/// The expected statistic shape of a family on a grid: scalar names,
/// then `(name, is_mass, cells)` per array, in serialization order.
#[allow(clippy::type_complexity)]
fn inspect_shape(
    h: &dyn SpatialHistogram,
) -> (Vec<&'static str>, Vec<(&'static str, bool, usize)>) {
    fn of<H: StatInspect + 'static>(
        h: &dyn SpatialHistogram,
    ) -> (Vec<&'static str>, Vec<(&'static str, bool, usize)>) {
        let Some(h) = h.as_any().downcast_ref::<H>() else {
            // Unreachable: the caller dispatched on the concrete kind.
            return (Vec::new(), Vec::new());
        };
        let scalars = h.scalar_stats().iter().map(|(name, _)| *name).collect();
        let arrays = h
            .cell_stats()
            .iter()
            .map(|a| match &a.values {
                CellValues::Counts(c) => (a.name, false, c.len()),
                CellValues::Masses(m) => (a.name, true, m.len()),
            })
            .collect();
        (scalars, arrays)
    }
    match h.kind() {
        HistogramKind::Ph => of::<PhHistogram>(h),
        HistogramKind::GhBasic => of::<GhBasicHistogram>(h),
        HistogramKind::Gh => of::<GhHistogram>(h),
        HistogramKind::Euler => of::<EulerHistogram>(h),
    }
}

/// Decodes a histogram delta from the envelope written by
/// [`HistogramDelta::persist`], verifying the length frame and trailing
/// CRC32 before the payload is touched.
///
/// # Errors
/// Returns [`HistogramError::Corrupt`] on malformed input, a bad
/// version, an unknown kind tag, a length-frame mismatch, or a failed
/// checksum.
pub fn load_delta(full: &[u8]) -> Result<HistogramDelta, HistogramError> {
    let envelope = |detail: String| HistogramError::corrupt(CorruptSection::Envelope, detail);
    let mut data = full;
    if data.remaining() < 12 {
        return Err(envelope(format!(
            "truncated delta envelope: {} bytes, need at least 12",
            full.len()
        )));
    }
    if data.get_u32_le() != DELTA_MAGIC {
        return Err(envelope("bad delta envelope magic".to_string()));
    }
    let version = data.get_u32_le();
    if version != DELTA_VERSION {
        return Err(envelope(format!(
            "unsupported delta envelope version {version}"
        )));
    }
    let tag = data.get_u32_le();
    let kind = HistogramKind::from_tag(tag)
        .ok_or_else(|| envelope(format!("unknown histogram kind tag {tag}")))?;
    if data.remaining() < 12 {
        return Err(envelope(format!(
            "truncated delta envelope: {} bytes, need at least 24",
            full.len()
        )));
    }
    let payload_len = data.get_u64_le();
    let framed_total = payload_len
        .checked_add(24)
        .ok_or_else(|| envelope(format!("absurd payload length {payload_len}")))?;
    if framed_total != full.len() as u64 {
        return Err(envelope(format!(
            "length frame mismatch: header says {payload_len} payload bytes \
             but the envelope holds {}",
            full.len()
        )));
    }
    let tail_at = full.len().saturating_sub(4);
    let (body, tail) = full.split_at(tail_at);
    let stored = u32::from_le_bytes(tail.try_into().unwrap_or([0; 4]));
    let computed = crc32(body);
    if stored != computed {
        return Err(HistogramError::corrupt(
            CorruptSection::Checksum,
            format!("CRC32 mismatch: stored {stored:#010x}, computed {computed:#010x}"),
        ));
    }
    let payload = body
        .get(20..)
        .ok_or_else(|| envelope("delta envelope shorter than its fixed header".to_string()))?;
    HistogramDelta::from_bytes(kind, payload)
}

/// Builds the delta for one concrete family: both batch sides go through
/// the shared row-band shard driver, then every statistic is differenced
/// in introspection order.
pub(crate) fn build_impl<H>(
    kind: HistogramKind,
    grid: Grid,
    inserts: &[Rect],
    deletes: &[Rect],
    threads: usize,
) -> HistogramDelta
where
    H: RowBanded + StatInspect,
{
    let ins: H = build_shard_merge(grid, inserts, threads);
    let del: H = build_shard_merge(grid, deletes, threads);
    let scalars = ins
        .scalar_stats()
        .iter()
        .zip(&del.scalar_stats())
        .map(|((name, iv), (_, dv))| (*name, i128::from(*iv) - i128::from(*dv)))
        .collect();
    let arrays = ins
        .cell_stats()
        .into_iter()
        .zip(del.cell_stats())
        .map(|(ia, da)| {
            let values = match (&ia.values, &da.values) {
                (CellValues::Counts(ic), CellValues::Counts(dc)) => DeltaValues::Counts(
                    ic.iter()
                        .zip(dc.iter())
                        .map(|(a, b)| i64::from(*a) - i64::from(*b))
                        .collect(),
                ),
                (CellValues::Masses(im), CellValues::Masses(dm)) => DeltaValues::Masses(
                    im.iter()
                        .zip(dm.iter())
                        .map(|(a, b)| a.saturating_sub(*b))
                        .collect(),
                ),
                // Unreachable: both sides are the same concrete family,
                // so every position has one representation. An empty
                // array here would be caught by apply's shape check.
                _ => DeltaValues::Counts(Vec::new()),
            };
            DeltaArray {
                name: ia.name,
                values,
            }
        })
        .collect();
    HistogramDelta {
        kind,
        grid,
        inserts: inserts.len() as u64,
        deletes: deletes.len() as u64,
        scalars,
        arrays,
    }
}

/// Checked scalar update: `u64 + i128` staying within `u64`.
fn checked_scalar(current: u64, d: i128, statistic: &'static str) -> Result<u64, HistogramError> {
    let value = i128::from(current) + d;
    u64::try_from(value).map_err(|_| HistogramError::DeltaOutOfRange {
        statistic,
        cell: None,
        value,
    })
}

/// Checked counter update: `u32 + i64` staying within `u32`.
fn checked_count(
    current: u32,
    d: i64,
    statistic: &'static str,
    cell: usize,
) -> Result<u32, HistogramError> {
    let value = i64::from(current) + d;
    u32::try_from(value).map_err(|_| HistogramError::DeltaOutOfRange {
        statistic,
        cell: Some(cell),
        value: i128::from(value),
    })
}

/// Applies a delta to one concrete family, atomically: a pre-flight
/// pass over the read-only statistics view range-checks every scalar and
/// counter, and only a fully in-range delta is committed through the
/// mutable view. On error the histogram is bit-for-bit untouched.
pub(crate) fn apply_impl<H>(h: &mut H, delta: &HistogramDelta) -> Result<(), HistogramError>
where
    H: SpatialHistogram + StatInspect + StatInspectMut,
{
    if h.kind() != delta.kind {
        return Err(HistogramError::KindMismatch {
            left: h.kind(),
            right: delta.kind,
        });
    }
    let (left, right) = (h.grid(), delta.grid);
    if !left.compatible(&right) {
        return Err(HistogramError::GridMismatch {
            left_level: left.level(),
            right_level: right.level(),
        });
    }

    // Pre-flight: every checked update must be in range (shape mismatch
    // surfaces as Corrupt — only a hand-forged delta can get here with
    // the wrong shape, since from_bytes and build fix it by kind+grid).
    let shape_err = || {
        HistogramError::corrupt(
            CorruptSection::Payload,
            "delta statistic shape does not match the histogram".to_string(),
        )
    };
    {
        let scalars = h.scalar_stats();
        if scalars.len() != delta.scalars.len() {
            return Err(shape_err());
        }
        for ((name, current), (_, d)) in scalars.iter().zip(&delta.scalars) {
            checked_scalar(*current, *d, name)?;
        }
        let arrays = h.cell_stats();
        if arrays.len() != delta.arrays.len() {
            return Err(shape_err());
        }
        for (current, update) in arrays.iter().zip(&delta.arrays) {
            match (&current.values, &update.values) {
                (CellValues::Counts(c), DeltaValues::Counts(d)) => {
                    if c.len() != d.len() {
                        return Err(shape_err());
                    }
                    for (cell, (cur, dd)) in c.iter().zip(d.iter()).enumerate() {
                        checked_count(*cur, *dd, current.name, cell)?;
                    }
                }
                (CellValues::Masses(m), DeltaValues::Masses(d)) => {
                    if m.len() != d.len() {
                        return Err(shape_err());
                    }
                    // Masses are signed and saturating by construction;
                    // no per-cell range check is needed.
                }
                _ => return Err(shape_err()),
            }
        }
    }
    // The mutable view must list statistics in the exact order the
    // read-only pre-flight just validated — a desynchronized family
    // impl is refused before any write, keeping application atomic.
    if h.cell_stats_mut()
        .iter()
        .zip(&delta.arrays)
        .any(|(m, u)| m.name != u.name)
    {
        return Err(shape_err());
    }

    // Commit: every update is in range, so the unchecked-looking writes
    // below cannot fail (the fallbacks keep the path total anyway).
    for ((_, slot), (_, d)) in h.scalar_stats_mut().into_iter().zip(&delta.scalars) {
        *slot = u64::try_from(i128::from(*slot) + d).unwrap_or(*slot);
    }
    for (target, update) in h.cell_stats_mut().into_iter().zip(&delta.arrays) {
        match (target.values, &update.values) {
            (CellValuesMut::Counts(c), DeltaValues::Counts(d)) => {
                for (slot, dd) in c.iter_mut().zip(d.iter()) {
                    *slot = u32::try_from(i64::from(*slot) + dd).unwrap_or(*slot);
                }
            }
            (CellValuesMut::Masses(m), DeltaValues::Masses(d)) => {
                for (slot, dd) in m.iter_mut().zip(d.iter()) {
                    *slot += *dd;
                }
            }
            // Unreachable after the pre-flight shape check.
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_histogram;
    use sj_geo::Extent;

    fn unit_grid(level: u32) -> Grid {
        Grid::new(level, Extent::unit()).unwrap()
    }

    fn uniform(n: usize, seed: u64, side: f64) -> Vec<Rect> {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0 - side);
                let y = rng.random_range(0.0..1.0 - side);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..side),
                    y + rng.random_range(0.0..side),
                )
            })
            .collect()
    }

    /// The headline identity: apply_delta(build(D), Δ) is byte-identical
    /// to build(D ∪ Δ⁺ ∖ Δ⁻), for every family and thread count.
    #[test]
    fn apply_matches_full_rebuild_every_kind() {
        let base = uniform(300, 9001, 0.07);
        let ins = uniform(80, 9002, 0.06);
        let grid = unit_grid(4);
        // Delete every third base rect.
        let deleted: Vec<Rect> = base.iter().copied().step_by(3).collect();
        let kept: Vec<Rect> = base
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, r)| *r)
            .collect();
        let target: Vec<Rect> = kept.iter().chain(&ins).copied().collect();
        for kind in HistogramKind::ALL {
            for threads in [1usize, 2, 5] {
                let delta = HistogramDelta::build_parallel(kind, grid, &ins, &deleted, threads);
                let mut maintained = build_histogram(kind, grid, &base);
                maintained.apply_delta(&delta).unwrap();
                let rebuilt = build_histogram(kind, grid, &target);
                assert_eq!(
                    maintained.persist(),
                    rebuilt.persist(),
                    "{kind} x{threads}: incremental maintenance must equal full rebuild"
                );
            }
        }
    }

    /// Deleting objects the histogram never saw is a typed error, and
    /// the failed application leaves the histogram untouched.
    #[test]
    fn underflow_is_typed_and_atomic() {
        let base = uniform(40, 9003, 0.08);
        let phantom = uniform(60, 9004, 0.08);
        let grid = unit_grid(3);
        for kind in HistogramKind::ALL {
            let delta = HistogramDelta::build(kind, grid, &[], &phantom);
            let mut h = build_histogram(kind, grid, &base);
            let before = h.persist();
            let err = h.apply_delta(&delta).unwrap_err();
            assert!(
                matches!(err, HistogramError::DeltaOutOfRange { .. }),
                "{kind}: expected DeltaOutOfRange, got {err:?}"
            );
            assert_eq!(h.persist(), before, "{kind}: failed apply must not mutate");
        }
    }

    /// Insert-then-delete of the same batch is an exact no-op.
    #[test]
    fn delta_of_identical_batches_is_empty() {
        let batch = uniform(50, 9005, 0.05);
        let grid = unit_grid(4);
        for kind in HistogramKind::ALL {
            let delta = HistogramDelta::build(kind, grid, &batch, &batch);
            assert!(delta.is_empty(), "{kind}");
            assert_eq!(delta.net_rects(), 0);
            let mut h = build_histogram(kind, grid, &batch);
            let before = h.persist();
            h.apply_delta(&delta).unwrap();
            assert_eq!(h.persist(), before, "{kind}: empty delta is a no-op");
        }
    }

    #[test]
    fn envelope_roundtrip_every_kind() {
        let ins = uniform(70, 9006, 0.06);
        let del = uniform(20, 9007, 0.06);
        let grid = unit_grid(5);
        for kind in HistogramKind::ALL {
            let delta = HistogramDelta::build(kind, grid, &ins, &del);
            let revived = load_delta(&delta.persist()).unwrap();
            assert_eq!(revived, delta, "{kind}: envelope must be lossless");
            assert_eq!(revived.inserts(), 70);
            assert_eq!(revived.deletes(), 20);
            assert_eq!(revived.net_rects(), 50);
        }
    }

    #[test]
    fn envelope_rejects_corruption() {
        let delta = HistogramDelta::build(
            HistogramKind::Gh,
            unit_grid(3),
            &uniform(30, 9008, 0.07),
            &[],
        );
        let bytes = delta.persist();
        assert!(load_delta(&bytes[..8]).is_err());
        let mut bad_magic = bytes.to_vec();
        bad_magic[0] ^= 1;
        assert!(load_delta(&bad_magic).is_err());
        let mut bad_version = bytes.to_vec();
        bad_version[4] = 99;
        assert!(load_delta(&bad_version).is_err());
        let mut bad_tag = bytes.to_vec();
        bad_tag[8] = 99;
        assert!(load_delta(&bad_tag).is_err());
        let mut flipped = bytes.to_vec();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(
            load_delta(&flipped),
            Err(HistogramError::Corrupt {
                section: CorruptSection::Checksum,
                ..
            })
        ));
        let mut padded = bytes.to_vec();
        padded.push(0);
        assert!(matches!(
            load_delta(&padded),
            Err(HistogramError::Corrupt {
                section: CorruptSection::Envelope,
                ..
            })
        ));
    }

    /// Applying a delta of the wrong kind or grid is a typed mismatch.
    #[test]
    fn mismatches_are_typed() {
        let rects = uniform(20, 9009, 0.06);
        let delta = HistogramDelta::build(HistogramKind::Ph, unit_grid(3), &rects, &[]);
        let mut gh = build_histogram(HistogramKind::Gh, unit_grid(3), &rects);
        assert!(matches!(
            gh.apply_delta(&delta),
            Err(HistogramError::KindMismatch { .. })
        ));
        let other = HistogramDelta::build(HistogramKind::Gh, unit_grid(4), &rects, &[]);
        assert!(matches!(
            gh.apply_delta(&other),
            Err(HistogramError::GridMismatch { .. })
        ));
    }
}
